// The on-disk checkpoint file format (real files).
//
// A vtk-legacy-inspired, self-describing container matching Section III-B:
// every file has a fixed-size master header (magic, version, application
// name, step/part identity, field list, offset table) followed by
// field-major data sections, each with its own section header (field name,
// size, checksum). Files written on any platform read back on any other:
// all integers are little-endian on disk.
//
//   +--------------------+  offset 0
//   | master header      |  4 KiB, includes the offset table
//   +--------------------+
//   | section hdr field0 |  64 B
//   | rank 0 block       |
//   | rank 1 block       |
//   | ...                |
//   +--------------------+
//   | section hdr field1 |
//   | ...                |
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bgckpt::iofmt {

inline constexpr std::uint64_t kMagic = 0x4e434b50434b5054ull;  // "NCKPCKPT"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint64_t kMasterHeaderBytes = 4096;
inline constexpr std::uint64_t kSectionHeaderBytes = 64;
inline constexpr std::size_t kMaxFields = 64;
inline constexpr std::size_t kFieldNameBytes = 24;

/// Identity and geometry of one checkpoint file.
struct FileSpec {
  std::uint32_t step = 0;            ///< checkpoint step index
  std::uint32_t part = 0;            ///< file index within the step
  std::uint32_t ranksInFile = 1;     ///< ranks whose state this file holds
  std::uint32_t firstGlobalRank = 0; ///< global rank of local rank 0
  std::uint64_t fieldBytesPerRank = 0;
  double simTime = 0.0;
  std::uint64_t iteration = 0;
  std::string application = "bgckpt";
  std::vector<std::string> fieldNames;  // one per field

  std::uint32_t numFields() const {
    return static_cast<std::uint32_t>(fieldNames.size());
  }
  /// Offset of the section header of `field`.
  std::uint64_t sectionOffset(int field) const;
  /// Offset of `rankInFile`'s block within `field`'s section.
  std::uint64_t blockOffset(int field, int rankInFile) const;
  std::uint64_t sectionDataBytes() const {
    return fieldBytesPerRank * ranksInFile;
  }
  std::uint64_t fileBytes() const;
};

/// CRC32 (IEEE 802.3, reflected) used by section headers.
std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t seed = 0);

/// Serialise the master header (exactly kMasterHeaderBytes).
std::vector<std::byte> encodeMasterHeader(const FileSpec& spec);

/// Parse a master header; throws std::runtime_error on corruption.
FileSpec decodeMasterHeader(std::span<const std::byte> bytes);

/// Serialise a section header for `field` whose payload has `crc`.
std::vector<std::byte> encodeSectionHeader(const FileSpec& spec, int field,
                                           std::uint32_t crc);

struct SectionInfo {
  std::string name;
  std::uint64_t dataBytes = 0;
  std::uint32_t crc = 0;
};
SectionInfo decodeSectionHeader(std::span<const std::byte> bytes);

// Little-endian primitives (byte-order independent).
void putU32(std::vector<std::byte>& out, std::size_t at, std::uint32_t v);
void putU64(std::vector<std::byte>& out, std::size_t at, std::uint64_t v);
void putF64(std::vector<std::byte>& out, std::size_t at, double v);
std::uint32_t getU32(std::span<const std::byte> in, std::size_t at);
std::uint64_t getU64(std::span<const std::byte> in, std::size_t at);
double getF64(std::span<const std::byte> in, std::size_t at);

}  // namespace bgckpt::iofmt
