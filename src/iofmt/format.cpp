#include "iofmt/format.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace bgckpt::iofmt {

namespace {

// Header field offsets within the 4 KiB master header.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffEndianTag = 12;
constexpr std::size_t kOffStep = 16;
constexpr std::size_t kOffPart = 20;
constexpr std::size_t kOffRanks = 24;
constexpr std::size_t kOffFirstRank = 28;
constexpr std::size_t kOffNumFields = 32;
constexpr std::size_t kOffFieldBytes = 40;
constexpr std::size_t kOffSimTime = 48;
constexpr std::size_t kOffIteration = 56;
constexpr std::size_t kOffAppName = 64;    // 64 bytes
constexpr std::size_t kOffHeaderCrc = 128;
constexpr std::size_t kOffTable = 256;     // field table entries follow
constexpr std::size_t kTableEntryBytes = kFieldNameBytes + 16;  // name+off+len
constexpr std::uint32_t kEndianTag = 0x01020304;

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  static const auto table = makeCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data)
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void putU32(std::vector<std::byte>& out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

void putU64(std::vector<std::byte>& out, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

void putF64(std::vector<std::byte>& out, std::size_t at, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, at, bits);
}

std::uint32_t getU32(std::span<const std::byte> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t getU64(std::span<const std::byte> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

double getF64(std::span<const std::byte> in, std::size_t at) {
  const std::uint64_t bits = getU64(in, at);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t FileSpec::sectionOffset(int field) const {
  return kMasterHeaderBytes +
         static_cast<std::uint64_t>(field) *
             (kSectionHeaderBytes + sectionDataBytes());
}

std::uint64_t FileSpec::blockOffset(int field, int rankInFile) const {
  return sectionOffset(field) + kSectionHeaderBytes +
         static_cast<std::uint64_t>(rankInFile) * fieldBytesPerRank;
}

std::uint64_t FileSpec::fileBytes() const {
  return kMasterHeaderBytes +
         numFields() * (kSectionHeaderBytes + sectionDataBytes());
}

std::vector<std::byte> encodeMasterHeader(const FileSpec& spec) {
  if (spec.fieldNames.empty() || spec.fieldNames.size() > kMaxFields)
    throw std::invalid_argument("checkpoint needs 1..64 fields");
  std::vector<std::byte> out(kMasterHeaderBytes, std::byte{0});
  putU64(out, kOffMagic, kMagic);
  putU32(out, kOffVersion, kVersion);
  putU32(out, kOffEndianTag, kEndianTag);
  putU32(out, kOffStep, spec.step);
  putU32(out, kOffPart, spec.part);
  putU32(out, kOffRanks, spec.ranksInFile);
  putU32(out, kOffFirstRank, spec.firstGlobalRank);
  putU32(out, kOffNumFields, spec.numFields());
  putU64(out, kOffFieldBytes, spec.fieldBytesPerRank);
  putF64(out, kOffSimTime, spec.simTime);
  putU64(out, kOffIteration, spec.iteration);
  for (std::size_t i = 0; i < spec.application.size() && i < 63; ++i)
    out[kOffAppName + i] = static_cast<std::byte>(spec.application[i]);
  for (std::size_t f = 0; f < spec.fieldNames.size(); ++f) {
    const std::size_t base = kOffTable + f * kTableEntryBytes;
    const auto& name = spec.fieldNames[f];
    for (std::size_t i = 0; i < name.size() && i < kFieldNameBytes - 1; ++i)
      out[base + i] = static_cast<std::byte>(name[i]);
    putU64(out, base + kFieldNameBytes,
           spec.sectionOffset(static_cast<int>(f)));
    putU64(out, base + kFieldNameBytes + 8, spec.sectionDataBytes());
  }
  // CRC over everything except the CRC field itself.
  std::vector<std::byte> scratch = out;
  putU32(scratch, kOffHeaderCrc, 0);
  putU32(out, kOffHeaderCrc, crc32(scratch));
  return out;
}

FileSpec decodeMasterHeader(std::span<const std::byte> bytes) {
  if (bytes.size() < kMasterHeaderBytes)
    throw std::runtime_error("checkpoint header truncated");
  if (getU64(bytes, kOffMagic) != kMagic)
    throw std::runtime_error("not a bgckpt checkpoint (bad magic)");
  if (getU32(bytes, kOffVersion) != kVersion)
    throw std::runtime_error("unsupported checkpoint version");
  if (getU32(bytes, kOffEndianTag) != kEndianTag)
    throw std::runtime_error("corrupt endianness tag");
  std::vector<std::byte> scratch(bytes.begin(),
                                 bytes.begin() + kMasterHeaderBytes);
  const std::uint32_t storedCrc = getU32(bytes, kOffHeaderCrc);
  putU32(scratch, kOffHeaderCrc, 0);
  if (crc32(scratch) != storedCrc)
    throw std::runtime_error("checkpoint header CRC mismatch");

  FileSpec spec;
  spec.step = getU32(bytes, kOffStep);
  spec.part = getU32(bytes, kOffPart);
  spec.ranksInFile = getU32(bytes, kOffRanks);
  spec.firstGlobalRank = getU32(bytes, kOffFirstRank);
  const std::uint32_t numFields = getU32(bytes, kOffNumFields);
  if (numFields == 0 || numFields > kMaxFields)
    throw std::runtime_error("corrupt field count");
  spec.fieldBytesPerRank = getU64(bytes, kOffFieldBytes);
  spec.simTime = getF64(bytes, kOffSimTime);
  spec.iteration = getU64(bytes, kOffIteration);
  {
    std::string app;
    for (std::size_t i = kOffAppName; i < kOffAppName + 64; ++i) {
      if (bytes[i] == std::byte{0}) break;
      app.push_back(static_cast<char>(bytes[i]));
    }
    spec.application = app;
  }
  for (std::uint32_t f = 0; f < numFields; ++f) {
    const std::size_t base = kOffTable + f * kTableEntryBytes;
    std::string name;
    for (std::size_t i = 0; i < kFieldNameBytes; ++i) {
      if (bytes[base + i] == std::byte{0}) break;
      name.push_back(static_cast<char>(bytes[base + i]));
    }
    spec.fieldNames.push_back(name);
    // Validate the stored offsets against the canonical layout.
    if (getU64(bytes, base + kFieldNameBytes) !=
        spec.sectionOffset(static_cast<int>(f)))
      throw std::runtime_error("corrupt offset table");
  }
  return spec;
}

std::vector<std::byte> encodeSectionHeader(const FileSpec& spec, int field,
                                           std::uint32_t crc) {
  std::vector<std::byte> out(kSectionHeaderBytes, std::byte{0});
  const auto& name = spec.fieldNames.at(static_cast<std::size_t>(field));
  for (std::size_t i = 0; i < name.size() && i < kFieldNameBytes - 1; ++i)
    out[i] = static_cast<std::byte>(name[i]);
  putU64(out, kFieldNameBytes, spec.sectionDataBytes());
  putU32(out, kFieldNameBytes + 8, crc);
  // The section header protects itself too: CRC over its first 36 bytes.
  putU32(out, kFieldNameBytes + 12,
         crc32(std::span<const std::byte>(out.data(), kFieldNameBytes + 12)));
  return out;
}

SectionInfo decodeSectionHeader(std::span<const std::byte> bytes) {
  if (bytes.size() < kSectionHeaderBytes)
    throw std::runtime_error("section header truncated");
  const std::uint32_t stored = getU32(bytes, kFieldNameBytes + 12);
  if (crc32(bytes.subspan(0, kFieldNameBytes + 12)) != stored)
    throw std::runtime_error("section header CRC mismatch");
  SectionInfo info;
  for (std::size_t i = 0; i < kFieldNameBytes; ++i) {
    if (bytes[i] == std::byte{0}) break;
    info.name.push_back(static_cast<char>(bytes[i]));
  }
  info.dataBytes = getU64(bytes, kFieldNameBytes);
  info.crc = getU32(bytes, kFieldNameBytes + 8);
  return info;
}

}  // namespace bgckpt::iofmt
