// Real-file checkpoint writer/reader (POSIX pwrite/pread).
//
// The writer supports concurrent block writes from multiple threads: each
// (field, rank) block has a fixed offset, so writers never overlap. Section
// checksums are defined as the CRC32 over the little-endian per-block CRCs
// in rank order, which lets blocks arrive in any order (and from any
// thread) without a streaming dependency.
#pragma once

#include <memory>
#include <string>

#include "iofmt/format.hpp"

namespace bgckpt::iofmt {

class CheckpointWriter {
 public:
  /// Creates/truncates `path` and writes the master header immediately.
  CheckpointWriter(const std::string& path, FileSpec spec);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  const FileSpec& spec() const { return spec_; }

  /// Write one rank's block of one field. Thread-safe across distinct
  /// (field, rankInFile) pairs. `data.size()` must equal
  /// spec().fieldBytesPerRank.
  void writeBlock(int field, int rankInFile,
                  std::span<const std::byte> data);

  /// Write section headers (with checksums) and close the file. Throws if
  /// any block was never written.
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  FileSpec spec_;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);
  ~CheckpointReader();
  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  const FileSpec& spec() const { return spec_; }

  std::vector<std::byte> readBlock(int field, int rankInFile) const;

  /// Re-derive every section checksum and compare against the stored ones.
  bool verify() const;

  SectionInfo sectionInfo(int field) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  FileSpec spec_;
};

}  // namespace bgckpt::iofmt
