#include "iofmt/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <vector>

namespace bgckpt::iofmt {

namespace {

void pwriteAll(int fd, std::span<const std::byte> data, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pwrite failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

std::vector<std::byte> preadAll(int fd, std::uint64_t bytes,
                                std::uint64_t offset) {
  std::vector<std::byte> out(bytes);
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pread failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) throw std::runtime_error("unexpected EOF in checkpoint file");
    done += static_cast<std::size_t>(n);
  }
  return out;
}

/// Section CRC: crc32 over the little-endian per-block CRCs in rank order.
std::uint32_t combineBlockCrcs(const std::vector<std::uint32_t>& crcs) {
  std::vector<std::byte> buf(crcs.size() * 4);
  for (std::size_t i = 0; i < crcs.size(); ++i)
    putU32(buf, i * 4, crcs[i]);
  return crc32(buf);
}

}  // namespace

struct CheckpointWriter::Impl {
  int fd = -1;
  // blockCrcs[field][rank]; written flags mirror it.
  std::vector<std::vector<std::uint32_t>> blockCrcs;
  std::vector<std::vector<char>> written;
};

CheckpointWriter::CheckpointWriter(const std::string& path, FileSpec spec)
    : impl_(std::make_unique<Impl>()), spec_(std::move(spec)) {
  const auto dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir);
  impl_->fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (impl_->fd < 0)
    throw std::runtime_error("cannot create checkpoint file " + path + ": " +
                             std::strerror(errno));
  const auto header = encodeMasterHeader(spec_);
  pwriteAll(impl_->fd, header, 0);
  impl_->blockCrcs.assign(
      spec_.numFields(),
      std::vector<std::uint32_t>(spec_.ranksInFile, 0));
  impl_->written.assign(spec_.numFields(),
                        std::vector<char>(spec_.ranksInFile, 0));
}

CheckpointWriter::~CheckpointWriter() {
  if (impl_ && impl_->fd >= 0) ::close(impl_->fd);
}

void CheckpointWriter::writeBlock(int field, int rankInFile,
                                  std::span<const std::byte> data) {
  if (data.size() != spec_.fieldBytesPerRank)
    throw std::invalid_argument("block size mismatch");
  pwriteAll(impl_->fd, data, spec_.blockOffset(field, rankInFile));
  impl_->blockCrcs[static_cast<std::size_t>(field)]
                  [static_cast<std::size_t>(rankInFile)] = crc32(data);
  impl_->written[static_cast<std::size_t>(field)]
                [static_cast<std::size_t>(rankInFile)] = 1;
}

void CheckpointWriter::close() {
  if (impl_->fd < 0) return;
  for (std::uint32_t f = 0; f < spec_.numFields(); ++f) {
    for (std::uint32_t r = 0; r < spec_.ranksInFile; ++r)
      if (!impl_->written[f][r])
        throw std::runtime_error("block never written: field " +
                                 std::to_string(f) + " rank " +
                                 std::to_string(r));
    const auto header = encodeSectionHeader(
        spec_, static_cast<int>(f), combineBlockCrcs(impl_->blockCrcs[f]));
    pwriteAll(impl_->fd, header, spec_.sectionOffset(static_cast<int>(f)));
  }
  ::close(impl_->fd);
  impl_->fd = -1;
}

struct CheckpointReader::Impl {
  int fd = -1;
};

CheckpointReader::CheckpointReader(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->fd = ::open(path.c_str(), O_RDONLY);
  if (impl_->fd < 0)
    throw std::runtime_error("cannot open checkpoint file " + path + ": " +
                             std::strerror(errno));
  const auto header = preadAll(impl_->fd, kMasterHeaderBytes, 0);
  spec_ = decodeMasterHeader(header);
}

CheckpointReader::~CheckpointReader() {
  if (impl_ && impl_->fd >= 0) ::close(impl_->fd);
}

std::vector<std::byte> CheckpointReader::readBlock(int field,
                                                   int rankInFile) const {
  if (field < 0 || static_cast<std::uint32_t>(field) >= spec_.numFields() ||
      rankInFile < 0 ||
      static_cast<std::uint32_t>(rankInFile) >= spec_.ranksInFile)
    throw std::out_of_range("block index out of range");
  return preadAll(impl_->fd, spec_.fieldBytesPerRank,
                  spec_.blockOffset(field, rankInFile));
}

SectionInfo CheckpointReader::sectionInfo(int field) const {
  const auto bytes =
      preadAll(impl_->fd, kSectionHeaderBytes, spec_.sectionOffset(field));
  return decodeSectionHeader(bytes);
}

bool CheckpointReader::verify() const {
  for (std::uint32_t f = 0; f < spec_.numFields(); ++f) {
    std::vector<std::uint32_t> crcs(spec_.ranksInFile);
    for (std::uint32_t r = 0; r < spec_.ranksInFile; ++r)
      crcs[r] = crc32(readBlock(static_cast<int>(f), static_cast<int>(r)));
    if (combineBlockCrcs(crcs) != sectionInfo(static_cast<int>(f)).crc)
      return false;
  }
  return true;
}

}  // namespace bgckpt::iofmt
