// MPI-IO over the simulated filesystem (a ROMIO-like layer).
//
// Implements the pieces of ROMIO this study depends on:
//  * collective open with the *deferred open* optimisation (only the
//    aggregators open the file at filesystem level);
//  * independent writes (MPI_File_write_at);
//  * collective writes (MPI_File_write_at_all) with two-phase collective
//    buffering: gather everyone's extents, partition the aggregate region
//    into contiguous *file domains aligned to filesystem block boundaries*
//    (the BG/P lock-contention optimisation), exchange data to the
//    aggregators over the torus, and let each aggregator commit its domain
//    in cb_buffer_size chunks;
//  * the "bgp_nodes_pset" hint controlling how many ranks per pset act as
//    aggregators (default 8 per 256-rank VN pset = the 32:1 of the paper).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fssim/parallel_fs.hpp"
#include "mpisim/comm.hpp"

namespace bgckpt::io {

struct Hints {
  /// Aggregators per pset (BG/P "bgp_nodes_pset"). With 256 VN-mode ranks
  /// per pset, the default 8 yields the stock 32:1 ranks-per-aggregator.
  int bgpNodesPset = 8;
  /// Collective buffer size per aggregator.
  sim::Bytes cbBufferSize = 16 * sim::MiB;
  /// Align file domains to filesystem block boundaries.
  bool alignFileDomains = true;
  /// Only aggregators open the file at filesystem level.
  bool deferredOpen = true;
};

/// One rank's handle to a shared MPI file. Copyable (shares state).
class MpiFile {
 public:
  /// Collective: every rank of `comm` calls this together. Creates the file
  /// when absent (rank 0 performs the create).
  static sim::Task<MpiFile> open(mpi::Comm comm, fs::ParallelFsSim& fsys,
                                 std::string path, Hints hints = {},
                                 obs::OpTraceContext otc = {});

  /// Independent write at an explicit offset (MPI_File_write_at). A live
  /// `otc` (minted by the issuing strategy) rides by value through the
  /// filesystem, ION, and storage layers, collecting hop spans.
  sim::Task<> writeAt(std::uint64_t offset, sim::Bytes len,
                      std::span<const std::byte> data = {},
                      obs::OpTraceContext otc = {});

  /// Collective write (MPI_File_write_at_all_begin/_end pair). Every rank
  /// of the communicator participates; ranks with len == 0 contribute
  /// nothing but still synchronise. Each Phase-1 piece carries the
  /// contributor's `otc` over the torus; aggregators link the received
  /// contexts as lineage children of their own before committing.
  sim::Task<> writeAtAll(std::uint64_t offset, sim::Bytes len,
                         std::span<const std::byte> data = {},
                         obs::OpTraceContext otc = {});

  /// Independent read at an explicit offset.
  sim::Task<> readAt(std::uint64_t offset, sim::Bytes len,
                     obs::OpTraceContext otc = {});

  /// Collective close.
  sim::Task<> close(obs::OpTraceContext otc = {});

  bool isAggregator() const;
  int numAggregators() const;
  const std::string& path() const;

 private:
  struct Shared;
  MpiFile(mpi::Comm comm, fs::ParallelFsSim* fsys,
          std::shared_ptr<Shared> shared)
      : comm_(comm), fsys_(fsys), shared_(std::move(shared)) {}

  sim::Task<> ensureFsHandle(obs::OpTraceContext otc = {});
  int myFsClientId() const { return comm_.globalRank(comm_.rank()); }

  mpi::Comm comm_;
  fs::ParallelFsSim* fsys_ = nullptr;
  std::shared_ptr<Shared> shared_;
  fs::FileHandle fsHandle_;  // per-rank; lazily opened
  int round_ = 0;            // collective-write round counter (uniform)
};

/// The aggregator ranks ROMIO would choose on this communicator: spread
/// evenly so that no pset holds more than `bgpNodesPset` of them.
std::vector<int> chooseAggregators(const mpi::Comm& comm, const Hints& hints);

}  // namespace bgckpt::io
