#include "mpiio/file.hpp"

#include <algorithm>

namespace bgckpt::io {

namespace {

constexpr int kExchangeTagBase = 1'000'000;

std::uint64_t ceilTo(std::uint64_t value, std::uint64_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

}  // namespace

struct MpiFile::Shared {
  std::string path;
  Hints hints;
  std::vector<int> aggregators;  // local ranks, ascending
  std::vector<bool> isAgg;

  // Metadata for the current collective-write round, built once by the
  // first rank to need it (single-threaded simulation makes this safe).
  struct RoundMeta {
    int round = -1;
    std::shared_ptr<const std::vector<std::uint64_t>> offsets;
    std::shared_ptr<const std::vector<std::uint64_t>> lens;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t domainSize = 0;
    // Sorted extent endpoints (zero-length extents excluded) for O(log n)
    // contributor counting per domain.
    std::vector<std::uint64_t> starts;
    std::vector<std::uint64_t> ends;

    int domainOf(std::uint64_t offset) const {
      return static_cast<int>((offset - lo) / domainSize);
    }
    std::uint64_t domainLo(int d) const {
      return lo + static_cast<std::uint64_t>(d) * domainSize;
    }
    std::uint64_t domainHi(int d) const {
      return std::min(hi, domainLo(d) + domainSize);
    }
    int numDomains() const {
      if (hi <= lo) return 0;
      return static_cast<int>((hi - lo + domainSize - 1) / domainSize);
    }
    /// Ranks whose extent overlaps [dLo, dHi).
    int contributors(std::uint64_t dLo, std::uint64_t dHi) const {
      const auto startsBelow = static_cast<std::int64_t>(
          std::lower_bound(starts.begin(), starts.end(), dHi) -
          starts.begin());
      const auto endsAtOrBelow = static_cast<std::int64_t>(
          std::upper_bound(ends.begin(), ends.end(), dLo) - ends.begin());
      return static_cast<int>(startsBelow - endsAtOrBelow);
    }
  };
  RoundMeta meta;

  void buildRound(int round, const Hints& h, sim::Bytes fsBlock,
                  std::shared_ptr<const std::vector<std::uint64_t>> offsets,
                  std::shared_ptr<const std::vector<std::uint64_t>> lens) {
    meta.round = round;
    meta.offsets = std::move(offsets);
    meta.lens = std::move(lens);
    meta.lo = ~0ULL;
    meta.hi = 0;
    meta.starts.clear();
    meta.ends.clear();
    for (std::size_t r = 0; r < meta.offsets->size(); ++r) {
      const auto len = (*meta.lens)[r];
      if (len == 0) continue;
      const auto off = (*meta.offsets)[r];
      meta.lo = std::min(meta.lo, off);
      meta.hi = std::max(meta.hi, off + len);
      meta.starts.push_back(off);
      meta.ends.push_back(off + len);
    }
    std::sort(meta.starts.begin(), meta.starts.end());
    std::sort(meta.ends.begin(), meta.ends.end());
    if (meta.hi <= meta.lo) {  // nothing to write this round
      meta.lo = meta.hi = 0;
      meta.domainSize = 1;
      return;
    }
    const auto n = static_cast<std::uint64_t>(aggregators.size());
    std::uint64_t raw = (meta.hi - meta.lo + n - 1) / n;
    if (h.alignFileDomains) raw = ceilTo(std::max<std::uint64_t>(raw, 1),
                                         fsBlock);
    meta.domainSize = std::max<std::uint64_t>(raw, 1);
  }
};

std::vector<int> chooseAggregators(const mpi::Comm& comm, const Hints& hints) {
  // BG/P rule: each pset the communicator touches contributes aggregators
  // in proportion to the ranks it holds there — ceil(ranksInPset /
  // (ranksPerPset / bgpNodesPset)) — spread so no node carries two. A dense
  // communicator gets the stock 32:1 ratio (256 VN ranks per pset / 8); a
  // sparse one (e.g. rbIO's one-writer-per-group comm) gets at least one
  // aggregator in every pset it touches.
  const auto& mach = comm.machine();
  const int ranksPerAgg =
      std::max(1, mach.ranksPerPset() / std::max(1, hints.bgpNodesPset));
  std::vector<int> perPset(static_cast<std::size_t>(mach.numPsets()), 0);
  for (int r = 0; r < comm.size(); ++r)
    ++perPset[static_cast<std::size_t>(
        mach.psetOfRank(comm.globalRank(r)))];
  int count = 0;
  for (int inPset : perPset)
    count += (inPset + ranksPerAgg - 1) / ranksPerAgg;
  count = std::clamp(count, 1, comm.size());
  std::vector<int> aggs;
  aggs.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k)
    aggs.push_back(static_cast<int>(
        (static_cast<std::int64_t>(k) * comm.size()) / count));
  return aggs;
}

sim::Task<MpiFile> MpiFile::open(mpi::Comm comm, fs::ParallelFsSim& fsys,
                                 std::string path, Hints hints,
                                 obs::OpTraceContext otc) {
  std::shared_ptr<Shared> shared;
  if (comm.rank() == 0) {
    shared = std::make_shared<Shared>();
    shared->path = path;
    shared->hints = hints;
    shared->aggregators = chooseAggregators(comm, hints);
    shared->isAgg.assign(static_cast<std::size_t>(comm.size()), false);
    for (int a : shared->aggregators)
      shared->isAgg[static_cast<std::size_t>(a)] = true;
    if (!fsys.image().exists(path)) {
      auto fh = co_await fsys.create(comm.globalRank(0), path, otc);
      co_await fsys.close(comm.globalRank(0), fh, otc);
    }
  }
  mpi::Message m;
  m.size = 64;  // a tiny metadata broadcast
  m.box = shared;
  const sim::SimTime bcastStart = comm.scheduler().now();
  m = co_await comm.bcast(0, m);
  otc.hop(obs::Hop::kCollective, bcastStart, comm.scheduler().now());
  shared = std::static_pointer_cast<Shared>(m.box);

  MpiFile file(comm, &fsys, shared);
  const bool opensNow =
      !hints.deferredOpen ||
      shared->isAgg[static_cast<std::size_t>(comm.rank())];
  if (opensNow) co_await file.ensureFsHandle(otc);
  const sim::SimTime barrierStart = comm.scheduler().now();
  co_await comm.barrier();
  otc.hop(obs::Hop::kCollective, barrierStart, comm.scheduler().now());
  co_return file;
}

sim::Task<> MpiFile::ensureFsHandle(obs::OpTraceContext otc) {
  if (!fsHandle_)
    fsHandle_ = co_await fsys_->open(myFsClientId(), shared_->path, otc);
}

sim::Task<> MpiFile::writeAt(std::uint64_t offset, sim::Bytes len,
                             std::span<const std::byte> data,
                             obs::OpTraceContext otc) {
  co_await ensureFsHandle(otc);
  co_await fsys_->write(myFsClientId(), fsHandle_, offset, len, data, otc);
}

sim::Task<> MpiFile::readAt(std::uint64_t offset, sim::Bytes len,
                            obs::OpTraceContext otc) {
  co_await ensureFsHandle(otc);
  co_await fsys_->read(myFsClientId(), fsHandle_, offset, len, otc);
}

sim::Task<> MpiFile::writeAtAll(std::uint64_t offset, sim::Bytes len,
                                std::span<const std::byte> data,
                                obs::OpTraceContext otc) {
  const int round = round_++;
  const sim::SimTime gatherStart = comm_.scheduler().now();
  auto offsets = co_await comm_.allGatherU64Shared(offset);
  auto lens = co_await comm_.allGatherU64Shared(len);
  otc.hop(obs::Hop::kCollective, gatherStart, comm_.scheduler().now());

  Shared& sh = *shared_;
  if (sh.meta.round != round)
    sh.buildRound(round, sh.hints, fsys_->config().blockSize,
                  std::move(offsets), std::move(lens));
  const auto& meta = sh.meta;
  const int tag = kExchangeTagBase + round;

  // Phase 1: ship my extent to the aggregator(s) owning its domains.
  if (len > 0 && meta.hi > meta.lo) {
    std::uint64_t cursor = offset;
    const std::uint64_t end = offset + len;
    while (cursor < end) {
      const int d = meta.domainOf(cursor);
      const std::uint64_t pieceEnd = std::min(end, meta.domainHi(d));
      mpi::Message piece;
      piece.size = pieceEnd - cursor;
      piece.meta = cursor;
      piece.trace = otc;  // the contributor's context rides with the data
      if (!data.empty()) {
        auto bytes = std::make_shared<std::vector<std::byte>>(
            data.begin() + static_cast<std::ptrdiff_t>(cursor - offset),
            data.begin() + static_cast<std::ptrdiff_t>(pieceEnd - offset));
        piece.payload = std::move(bytes);
      }
      const int aggRank = sh.aggregators[static_cast<std::size_t>(d)];
      // Fire-and-forget: delivery is guaranteed before the aggregator can
      // finish its expected-receive loop, and the closing barrier bounds
      // this rank's participation.
      mpi::Request req = co_await comm_.isend(aggRank, tag, std::move(piece));
      (void)req;
      cursor = pieceEnd;
    }
  }

  // Phase 2: aggregators collect their domain and commit it in
  // cb_buffer_size chunks.
  if (sh.isAgg[static_cast<std::size_t>(comm_.rank())] && meta.hi > meta.lo) {
    // Which domain(s) do I own? Aggregator k owns domain k.
    const auto it = std::find(sh.aggregators.begin(), sh.aggregators.end(),
                              comm_.rank());
    const int myDomain = static_cast<int>(it - sh.aggregators.begin());
    if (myDomain < meta.numDomains()) {
      const std::uint64_t dLo = meta.domainLo(myDomain);
      const std::uint64_t dHi = meta.domainHi(myDomain);
      const int expected = meta.contributors(dLo, dHi);
      struct Piece {
        std::uint64_t offset;
        sim::Bytes size;
        std::shared_ptr<const std::vector<std::byte>> payload;
      };
      std::vector<Piece> pieces;
      pieces.reserve(static_cast<std::size_t>(expected));
      for (int i = 0; i < expected; ++i) {
        mpi::Message msg = co_await comm_.recv(mpi::kAnySource, tag);
        otc.link(msg.trace);  // 32:1 (or nf-dependent) fan-in lineage
        pieces.push_back({msg.meta, msg.size, msg.payload});
      }
      std::sort(pieces.begin(), pieces.end(),
                [](const Piece& a, const Piece& b) {
                  return a.offset < b.offset;
                });
      co_await ensureFsHandle(otc);
      // Coalesce contiguous pieces into runs; commit runs chunk by chunk.
      std::size_t i = 0;
      while (i < pieces.size()) {
        std::uint64_t runLo = pieces[i].offset;
        std::uint64_t runHi = runLo + pieces[i].size;
        std::vector<std::byte> runBytes;
        bool haveBytes = pieces[i].payload != nullptr;
        if (haveBytes)
          runBytes.assign(pieces[i].payload->begin(),
                          pieces[i].payload->end());
        ++i;
        while (i < pieces.size() && pieces[i].offset == runHi) {
          if (haveBytes && pieces[i].payload) {
            runBytes.insert(runBytes.end(), pieces[i].payload->begin(),
                            pieces[i].payload->end());
          } else {
            haveBytes = false;
          }
          runHi += pieces[i].size;
          ++i;
        }
        std::uint64_t cursor = runLo;
        while (cursor < runHi) {
          const std::uint64_t chunkEnd =
              std::min(runHi, cursor + sh.hints.cbBufferSize);
          std::span<const std::byte> chunkData;
          if (haveBytes)
            chunkData = std::span<const std::byte>(
                runBytes.data() + (cursor - runLo), chunkEnd - cursor);
          co_await fsys_->write(myFsClientId(), fsHandle_, cursor,
                                chunkEnd - cursor, chunkData, otc);
          cursor = chunkEnd;
        }
      }
    }
  }

  // Phase 3: collective completion.
  const sim::SimTime barrierStart = comm_.scheduler().now();
  co_await comm_.barrier();
  otc.hop(obs::Hop::kCollective, barrierStart, comm_.scheduler().now());
}

sim::Task<> MpiFile::close(obs::OpTraceContext otc) {
  if (fsHandle_) {
    co_await fsys_->close(myFsClientId(), fsHandle_, otc);
    fsHandle_.reset();
  }
  const sim::SimTime barrierStart = comm_.scheduler().now();
  co_await comm_.barrier();
  otc.hop(obs::Hop::kCollective, barrierStart, comm_.scheduler().now());
}

bool MpiFile::isAggregator() const {
  return shared_->isAgg[static_cast<std::size_t>(comm_.rank())];
}

int MpiFile::numAggregators() const {
  return static_cast<int>(shared_->aggregators.size());
}

const std::string& MpiFile::path() const { return shared_->path; }

}  // namespace bgckpt::io
