#include "storsim/fabric.hpp"

#include <algorithm>

namespace bgckpt::stor {

StorageFabric::StorageFabric(sim::Scheduler& sched,
                             const machine::Machine& mach, std::uint64_t seed,
                             NoiseModel noise, int serverConcurrency,
                             obs::Observability* obs)
    : sched_(sched),
      mach_(mach),
      obs_(obs),
      rng_(seed, "storage-fabric"),
      noise_(noise) {
  for (int s = 0; s < numServers(); ++s)
    servers_.emplace_back(sched, serverConcurrency, "fs-server");
  for (int a = 0; a < numArrays(); ++a) arrayPorts_.emplace_back(sched, 1, "ddn-array-port");
  if (obs_) {
    auto& m = obs_->metrics();
    mRequests_ = &m.counter("stor.requests");
    mBytes_ = &m.counter("stor.bytes_written");
    mServerBusy_ = &m.gauge("stor.server.busy_seconds");
    mArrayBusy_ = &m.gauge("stor.array.busy_seconds");
    mStreamsMax_ = &m.gauge("stor.active_streams.max");
    mServiceTime_ = &m.histogram("stor.service_time", 0.0, 2.0, 100);
    // Server "links" count stream slots so utilization is a 0..1 fraction
    // of the fabric's aggregate service capacity.
    m.gauge("stor.server.links")
        .set(static_cast<double>(numServers() * serverConcurrency));
    m.gauge("stor.array.links").set(static_cast<double>(numArrays()));
    tServerQueue_ = &obs_->telemetry().probe("stor.server.queue",
                                             obs::ProbeKind::kGauge,
                                             numServers());
    tServerInflight_ = &obs_->telemetry().probe("stor.server.inflight",
                                                obs::ProbeKind::kGauge,
                                                numServers());
    tServerBytes_ = &obs_->telemetry().probe("stor.server.bytes",
                                             obs::ProbeKind::kRate,
                                             numServers());
    tArrayInflight_ = &obs_->telemetry().probe("stor.array.inflight",
                                               obs::ProbeKind::kGauge,
                                               numArrays());
    tStreams_ = &obs_->telemetry().probe("stor.active_streams",
                                         obs::ProbeKind::kGauge);
  }
}

sim::Task<> StorageFabric::write(int serverId, StreamId stream,
                                 sim::Bytes bytes,
                                 sim::Bandwidth effectiveServerBandwidth,
                                 obs::OpTraceContext otc) {
  co_await service(serverId, stream, bytes, effectiveServerBandwidth,
                   mach_.io().ddnWriteBandwidth, otc);
  bytesWritten_ += bytes;
  if (mBytes_) mBytes_->add(bytes);
}

sim::Task<> StorageFabric::read(int serverId, StreamId stream,
                                sim::Bytes bytes,
                                sim::Bandwidth effectiveServerBandwidth,
                                obs::OpTraceContext otc) {
  co_await service(serverId, stream, bytes, effectiveServerBandwidth,
                   mach_.io().ddnWriteBandwidth * 1.28,  // 60/47 read:write
                   otc);
}

sim::Task<> StorageFabric::service(int serverId, StreamId stream,
                                   sim::Bytes bytes,
                                   sim::Bandwidth serverRate,
                                   sim::Bandwidth arrayRate,
                                   obs::OpTraceContext otc) {
  const double start = sched_.now();
  auto& server = servers_.at(static_cast<std::size_t>(serverId));
  auto& arrayPort = arrayPorts_[static_cast<std::size_t>(arrayOfServer(serverId))];

  // Stage 1: the file server ingests and processes the request.
  if (tServerQueue_) tServerQueue_->add(serverId, 1.0);
  {
    auto hold = co_await sim::ScopedTokens::take(server, 1);
    if (tServerQueue_) tServerQueue_->add(serverId, -1.0);
    otc.hop(obs::Hop::kServerQueue, start, sched_.now());
    if (tServerInflight_) tServerInflight_->add(serverId, 1.0);
    const double factor = noiseFactor();
    const sim::Duration busy =
        mach_.io().serverRequestOverhead * factor +
        sim::transferTime(bytes, serverRate) * factor;
    const sim::SimTime serviceStart = sched_.now();
    co_await sched_.delay(busy);
    otc.hop(obs::Hop::kServerService, serviceStart, sched_.now(), bytes);
    if (mServerBusy_) mServerBusy_->add(busy);
    if (tServerBytes_) tServerBytes_->add(serverId, static_cast<double>(bytes));
    if (tServerInflight_) tServerInflight_->add(serverId, -1.0);
  }

  // Stage 2: the backing DDN array commits the data. Eight servers share
  // one array, so this is where cross-server interference appears.
  {
    const sim::SimTime arrayStart = sched_.now();
    auto hold = co_await sim::ScopedTokens::take(arrayPort, 1);
    otc.hop(obs::Hop::kArrayQueue, arrayStart, sched_.now());
    const int arr = arrayOfServer(serverId);
    if (tArrayInflight_) tArrayInflight_->add(arr, 1.0);
    const sim::Duration busy =
        seekPenalty(stream) + sim::transferTime(bytes, arrayRate);
    const sim::SimTime commitStart = sched_.now();
    co_await sched_.delay(busy);
    otc.hop(obs::Hop::kDdnCommit, commitStart, sched_.now(), bytes);
    if (mArrayBusy_) mArrayBusy_->add(busy);
    if (tArrayInflight_) tArrayInflight_->add(arr, -1.0);
  }

  ++requests_;
  serviceTime_.add(sched_.now() - start);
  if (obs_) {
    mRequests_->add();
    mServiceTime_->add(sched_.now() - start);
    mStreamsMax_->setMax(static_cast<double>(activeStreams()));
    if (tStreams_) tStreams_->set(static_cast<double>(activeStreams()));
    if (obs_->tracing(obs::Layer::kStorage))
      obs_->completeBytes(obs::Layer::kStorage, serverId, "service", start,
                          sched_.now(), bytes);
  }
}

double StorageFabric::noiseFactor() {
  if (noise_.severeProbability > 0 && rng_.chance(noise_.severeProbability))
    return rng_.lognormal(noise_.severeFactorMedian, noise_.severeFactorSigma);
  if (noise_.slowProbability > 0 && rng_.chance(noise_.slowProbability))
    return rng_.lognormal(noise_.slowFactorMedian, noise_.slowFactorSigma);
  return 1.0;
}

sim::Duration StorageFabric::seekPenalty(StreamId stream) {
  const double now = sched_.now();
  expireStreams(now);
  auto [it, inserted] = recentStreams_.try_emplace(stream, now);
  if (inserted) {
    ++activeCount_;
  } else {
    it->second = now;
  }
  touches_.emplace_back(now, stream);
  const int active = activeStreams();
  const int knee = mach_.io().ddnStreamKnee;
  if (active <= knee) return 0.0;
  // Every request pays a reposition cost proportional to how far past the
  // knee the interleave factor is; the penalty saturates once the arms are
  // seeking on effectively every request.
  const double excess = std::min(
      1.5, static_cast<double>(active - knee) / static_cast<double>(knee));
  return mach_.io().ddnSeekPenalty * excess;
}

int StorageFabric::activeStreams() const {
  const sim::SimTime now = sched_.now();
  if (now == activeCacheTime_) return activeCache_;
  expireStreams(now);
  activeCache_ = activeCount_;
  activeCacheTime_ = now;
  return activeCache_;
}

void StorageFabric::expireStreams(sim::SimTime now) const {
  // A touch record at time t stops counting once now - t > kStreamWindow.
  // The record carries the stream's then-latest touch time, so the stream
  // retires only if it was not touched again since (map value unchanged);
  // after the drain every surviving map entry is within the window.
  while (!touches_.empty() && now - touches_.front().first > kStreamWindow) {
    const auto [t, s] = touches_.front();
    touches_.pop_front();
    auto it = recentStreams_.find(s);
    if (it != recentStreams_.end() && it->second == t) {
      recentStreams_.erase(it);
      --activeCount_;
    }
  }
}

}  // namespace bgckpt::stor
