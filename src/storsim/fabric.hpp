// Storage fabric: file servers backed by DDN disk arrays.
//
// Requests arrive at a file server (FIFO queue, fixed per-request overhead,
// service at the server's sustained rate), then occupy the server's backing
// DDN array. Two effects shape the figures:
//
//  * Background noise: the Intrepid filesystems were shared with Eureka and
//    other clusters, and all the paper's runs happened "under normal load".
//    Each server request can land in a noisy episode that inflates its
//    service time (lognormal multiplier), producing the straggler outliers
//    the paper blames for coIO's 64K-core drop (Fig. 10).
//
//  * Stream thrash: a DDN array interleaving many distinct write streams
//    pays seek/reposition penalties once the stream count exceeds a knee,
//    degrading the right-hand side of the file-count sweep (Fig. 8).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "machine/bgp.hpp"
#include "obs/obs.hpp"
#include "obs/optrace.hpp"
#include "obs/telemetry.hpp"
#include "simcore/random.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"

namespace bgckpt::stor {

/// Identifies a logical stream (one file) for seek accounting.
using StreamId = std::uint64_t;

struct NoiseModel {
  /// Probability that a server request hits a transient noisy episode.
  double slowProbability = 0.01;
  /// Lognormal multiplier applied to noisy requests.
  double slowFactorMedian = 3.0;
  double slowFactorSigma = 0.5;
  /// Rare severe stalls (an overloaded server, a RAID rebuild, ...).
  double severeProbability = 8e-6;
  double severeFactorMedian = 60.0;
  double severeFactorSigma = 0.3;

  /// A noise model for an idle, dedicated system (used by tests).
  static NoiseModel none() {
    return NoiseModel{0.0, 1.0, 0.0, 0.0, 1.0, 0.0};
  }
};

class StorageFabric {
 public:
  /// `serverConcurrency` is the number of client streams one file server
  /// services in parallel; each in-flight request is serviced at the
  /// caller-supplied per-stream rate, so a server's aggregate ceiling is
  /// serverConcurrency * rate.
  StorageFabric(sim::Scheduler& sched, const machine::Machine& mach,
                std::uint64_t seed, NoiseModel noise = NoiseModel{},
                int serverConcurrency = 1,
                obs::Observability* obs = nullptr);

  /// Service one write request of `bytes` for `stream` on `serverId`.
  /// `effectiveServerBandwidth` lets the filesystem layer express its own
  /// efficiency (GPFS software overhead) without changing the hardware.
  /// A live `otc` receives the server queue/service and array queue/commit
  /// hop spans.
  sim::Task<> write(int serverId, StreamId stream, sim::Bytes bytes,
                    sim::Bandwidth effectiveServerBandwidth,
                    obs::OpTraceContext otc = {});

  /// Service one read request (reads use the read-side service rate).
  sim::Task<> read(int serverId, StreamId stream, sim::Bytes bytes,
                   sim::Bandwidth effectiveServerBandwidth,
                   obs::OpTraceContext otc = {});

  int numServers() const { return mach_.io().numFileServers; }
  int numArrays() const { return mach_.io().numDdnArrays; }
  int arrayOfServer(int serverId) const {
    return serverId % mach_.io().numDdnArrays;
  }

  sim::Bytes bytesWritten() const { return bytesWritten_; }
  std::uint64_t requestsServed() const { return requests_; }
  const sim::Accumulator& serviceTimeStats() const { return serviceTime_; }

  /// Distinct streams recently active across the fabric (diagnostic hook).
  int activeStreams() const;

 private:
  sim::Task<> service(int serverId, StreamId stream, sim::Bytes bytes,
                      sim::Bandwidth serverRate, sim::Bandwidth arrayRate,
                      obs::OpTraceContext otc);
  double noiseFactor();
  sim::Duration seekPenalty(StreamId stream);
  /// Drop streams idle past kStreamWindow (lazy, driven by touch records).
  void expireStreams(sim::SimTime now) const;

  static constexpr sim::Duration kStreamWindow = 2.0;  // seconds

  sim::Scheduler& sched_;
  const machine::Machine& mach_;
  obs::Observability* obs_;
  sim::RngStream rng_;
  NoiseModel noise_;
  // By-value FIFO resources (deque: Resource is non-movable).
  std::deque<sim::Resource> servers_;
  std::deque<sim::Resource> arrayPorts_;
  // stream -> last time it touched the fabric. The interleave pressure that
  // matters on the shared DDN tier is the system-wide count of concurrent
  // write streams, since every file's blocks stripe over all servers and
  // arrays. The count is maintained incrementally: every touch appends a
  // (time, stream) record, and records older than kStreamWindow retire
  // their stream (if not re-touched since) as simulated time advances —
  // O(1) amortized per request instead of an O(streams) scan.
  // Mutable: activeStreams() is a const diagnostic but drives lazy expiry.
  mutable std::unordered_map<StreamId, sim::SimTime> recentStreams_;
  mutable std::deque<std::pair<sim::SimTime, StreamId>> touches_;
  mutable int activeCount_ = 0;
  // The reported count is sampled once per distinct timestamp: requests
  // landing at the same simulated instant all see the crowd as it stood
  // when the first of them looked (they are "concurrent" — none of them
  // has finished announcing itself to the others).
  mutable int activeCache_ = 0;
  mutable sim::SimTime activeCacheTime_ = -1.0;
  sim::Bytes bytesWritten_ = 0;
  std::uint64_t requests_ = 0;
  sim::Accumulator serviceTime_;
  obs::Counter* mRequests_ = nullptr;
  obs::Counter* mBytes_ = nullptr;
  obs::Gauge* mServerBusy_ = nullptr;
  obs::Gauge* mArrayBusy_ = nullptr;
  obs::Gauge* mStreamsMax_ = nullptr;
  obs::Histogram* mServiceTime_ = nullptr;
  // Per-file-server sampled series (one instance per GPFS NSD server) plus
  // per-array commit occupancy and the stream-cache working set.
  obs::Probe* tServerQueue_ = nullptr;     // requests waiting for a slot
  obs::Probe* tServerInflight_ = nullptr;  // requests holding a slot
  obs::Probe* tServerBytes_ = nullptr;     // serviced bytes (rate)
  obs::Probe* tArrayInflight_ = nullptr;   // commits holding the array port
  obs::Probe* tStreams_ = nullptr;         // active-stream cache occupancy
};

}  // namespace bgckpt::stor
