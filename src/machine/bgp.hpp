// Blue Gene/P machine description.
//
// Captures the structural facts the simulation depends on: partition
// geometry (3-D torus of quad-core nodes), the pset organisation (64 compute
// nodes share one dedicated I/O node), rank-to-node mapping, and the
// calibrated speeds of the networks and the storage fabric behind the IONs.
// `intrepidMachine()` builds the configuration of the 557 TF "Intrepid"
// system at Argonne used throughout the paper.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "simcore/units.hpp"

namespace bgckpt::machine {

using sim::Bandwidth;
using sim::Bytes;
using sim::Duration;

/// Dimensions of a 3-D torus partition, in nodes.
struct TorusShape {
  int x = 0;
  int y = 0;
  int z = 0;

  int nodes() const { return x * y * z; }
};

/// Coordinates of a node within the torus.
struct NodeCoord {
  int x = 0;
  int y = 0;
  int z = 0;

  bool operator==(const NodeCoord&) const = default;
};

/// Execution mode: how many MPI ranks run per quad-core node.
enum class NodeMode {
  kSmp = 1,   // 1 rank, 4 threads
  kDual = 2,  // 2 ranks
  kVn = 4,    // "virtual node": 4 ranks, one per core
};

/// Compute-side parameters of a BG/P system.
struct ComputeConfig {
  double coreFrequencyHz = 850e6;
  int coresPerNode = 4;
  Bytes memoryPerNode = 2 * sim::GiB;
  /// Per-direction bandwidth of one torus link.
  Bandwidth torusLinkBandwidth = 425e6;
  /// Per-hop latency on the torus.
  Duration torusHopLatency = 0.1e-6;
  /// Software send/receive overhead per MPI message.
  Duration mpiOverhead = 2.5e-6;
  /// Node memory copy bandwidth (bounds local aggregation/buffering).
  Bandwidth memoryBandwidth = 13.6e9;
  /// Collective (tree) network: per-link bandwidth and per-stage latency.
  Bandwidth treeLinkBandwidth = 850e6;
  Duration treeStageLatency = 0.75e-6;
  /// Hardware barrier network latency (global interrupt).
  Duration barrierLatency = 1.3e-6;
};

/// I/O-side parameters: psets, IONs, and the storage system behind them.
struct IoConfig {
  /// Compute nodes per pset (each pset has one dedicated I/O node).
  int nodesPerPset = 64;
  /// ION uplink to the storage fabric (10 Gigabit Ethernet).
  Bandwidth ionUplinkBandwidth = 1.25e9;
  /// System-call forwarding overhead, compute node -> ION, per request.
  Duration forwardingOverhead = 25e-6;
  /// Number of GPFS/PVFS file servers.
  int numFileServers = 128;
  /// Sustained per-server write bandwidth (47 GB/s peak / 128 servers).
  Bandwidth serverWriteBandwidth = 367e6;
  /// Sustained per-server read bandwidth (60 GB/s peak / 128 servers).
  Bandwidth serverReadBandwidth = 469e6;
  /// Per-request service overhead at a file server.
  Duration serverRequestOverhead = 120e-6;
  /// Number of DDN 9900 storage arrays behind the servers.
  int numDdnArrays = 16;
  /// Sustained write bandwidth of one DDN array.
  Bandwidth ddnWriteBandwidth = 2.94e9;
  /// Extra seek/reposition penalty per request once an array serves many
  /// concurrent streams (models falling disk efficiency at high fan-in).
  /// Scaled by min(1.5, (active - knee) / knee) per request.
  Duration ddnSeekPenalty = 2.5e-3;
  /// Number of concurrent streams an array absorbs before seek penalties
  /// kick in. Files stripe across all servers, so every array sees every
  /// active client stream; the knee is therefore a system-wide figure.
  int ddnStreamKnee = 1000;
};

/// A specific machine: geometry, mode, and both parameter blocks.
class Machine {
 public:
  Machine(TorusShape shape, NodeMode mode, ComputeConfig compute,
          IoConfig io);

  const TorusShape& shape() const { return shape_; }
  NodeMode mode() const { return mode_; }
  const ComputeConfig& compute() const { return compute_; }
  const IoConfig& io() const { return io_; }

  int numNodes() const { return shape_.nodes(); }
  int ranksPerNode() const { return static_cast<int>(mode_); }
  int numRanks() const { return numNodes() * ranksPerNode(); }
  int numPsets() const { return numNodes() / io_.nodesPerPset; }
  int ranksPerPset() const { return io_.nodesPerPset * ranksPerNode(); }

  /// Rank -> node, TXYZ order (cores vary fastest, then x, y, z).
  int nodeOfRank(int rank) const;
  /// Rank -> core within its node.
  int coreOfRank(int rank) const { return rank % ranksPerNode(); }
  /// Node linear index -> torus coordinates (x fastest).
  NodeCoord coordOfNode(int node) const;
  /// Torus coordinates -> node linear index.
  int nodeOfCoord(const NodeCoord& c) const;
  /// Node -> pset (contiguous blocks of nodesPerPset nodes).
  int psetOfNode(int node) const { return node / io_.nodesPerPset; }
  int psetOfRank(int rank) const { return psetOfNode(nodeOfRank(rank)); }

  /// Hop count of dimension-ordered routing between two nodes (shortest
  /// wraparound distance per dimension).
  int torusHops(int nodeA, int nodeB) const;

 private:
  TorusShape shape_;
  NodeMode mode_;
  ComputeConfig compute_;
  IoConfig io_;
};

/// Intrepid-like machine with `numRanks` MPI processes in VN mode.
/// Supported rank counts: powers of two from 256 to 163840's VN limit;
/// geometry is chosen to match ALCF partition shapes.
Machine intrepidMachine(int numRanks);

/// Human-readable one-line summary ("16384 ranks, 4096 nodes 16x16x16, ...").
std::string describe(const Machine& m);

}  // namespace bgckpt::machine
