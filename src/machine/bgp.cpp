#include "machine/bgp.hpp"

#include <cmath>
#include <cstdio>

namespace bgckpt::machine {

Machine::Machine(TorusShape shape, NodeMode mode, ComputeConfig compute,
                 IoConfig io)
    : shape_(shape), mode_(mode), compute_(compute), io_(io) {
  if (shape_.x <= 0 || shape_.y <= 0 || shape_.z <= 0)
    throw std::invalid_argument("torus dimensions must be positive");
  if (numNodes() % io_.nodesPerPset != 0)
    throw std::invalid_argument(
        "node count must be a multiple of the pset size");
}

int Machine::nodeOfRank(int rank) const {
  if (rank < 0 || rank >= numRanks())
    throw std::out_of_range("rank out of range");
  return rank / ranksPerNode();
}

NodeCoord Machine::coordOfNode(int node) const {
  if (node < 0 || node >= numNodes())
    throw std::out_of_range("node out of range");
  NodeCoord c;
  c.x = node % shape_.x;
  c.y = (node / shape_.x) % shape_.y;
  c.z = node / (shape_.x * shape_.y);
  return c;
}

int Machine::nodeOfCoord(const NodeCoord& c) const {
  if (c.x < 0 || c.x >= shape_.x || c.y < 0 || c.y >= shape_.y || c.z < 0 ||
      c.z >= shape_.z)
    throw std::out_of_range("coordinate out of range");
  return c.x + shape_.x * (c.y + shape_.y * c.z);
}

int Machine::torusHops(int nodeA, int nodeB) const {
  const NodeCoord a = coordOfNode(nodeA);
  const NodeCoord b = coordOfNode(nodeB);
  auto wrapDist = [](int p, int q, int dim) {
    int d = std::abs(p - q);
    return std::min(d, dim - d);
  };
  return wrapDist(a.x, b.x, shape_.x) + wrapDist(a.y, b.y, shape_.y) +
         wrapDist(a.z, b.z, shape_.z);
}

Machine intrepidMachine(int numRanks) {
  // VN mode: 4 ranks per node. Partition shapes follow ALCF conventions
  // (midplane = 8x8x16 = 512 nodes; larger partitions stack midplanes).
  if (numRanks < 4 || numRanks % 4 != 0)
    throw std::invalid_argument("Intrepid VN-mode rank count must be 4*nodes");
  const int nodes = numRanks / 4;
  TorusShape shape;
  switch (nodes) {
    case 64:    shape = {4, 4, 4};    break;
    case 128:   shape = {4, 4, 8};    break;
    case 256:   shape = {4, 8, 8};    break;
    case 512:   shape = {8, 8, 8};    break;   // one midplane (logical cube)
    case 1024:  shape = {8, 8, 16};   break;
    case 2048:  shape = {8, 16, 16};  break;
    case 4096:  shape = {16, 16, 16}; break;   // 16K ranks
    case 8192:  shape = {16, 16, 32}; break;   // 32K ranks
    case 16384: shape = {16, 32, 32}; break;   // 64K ranks
    case 32768: shape = {32, 32, 32}; break;   // 128K ranks
    case 40960: shape = {40, 32, 32}; break;   // full Intrepid
    default:
      throw std::invalid_argument(
          "unsupported Intrepid partition: " + std::to_string(nodes) +
          " nodes");
  }
  return Machine(shape, NodeMode::kVn, ComputeConfig{}, IoConfig{});
}

std::string describe(const Machine& m) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%d ranks on %d nodes (%dx%dx%d torus, %s mode), %d psets, "
                "%d file servers, %d DDN arrays",
                m.numRanks(), m.numNodes(), m.shape().x, m.shape().y,
                m.shape().z,
                m.mode() == NodeMode::kVn
                    ? "VN"
                    : (m.mode() == NodeMode::kDual ? "DUAL" : "SMP"),
                m.numPsets(), m.io().numFileServers, m.io().numDdnArrays);
  return buf;
}

}  // namespace bgckpt::machine
