// The parallel filesystem engine (GPFS and PVFS personalities).
//
// Simulates the full client-visible path of a file operation on Intrepid:
//
//   compute node --(function shipping)--> ION --(10GigE)--> file server
//        |                                                    |
//   byte-range tokens (GPFS only)                      DDN disk array
//
// Timing mechanisms, each tied to a phenomenon in the paper:
//  * Directory-insert thrash: creates in one directory serialise; while the
//    pending-creator queue exceeds a threshold, every create pays a heavy
//    token-storm cost. This is the 1PFPP collapse (Figs. 5/6/9).
//  * Byte-range tokens: conflicting writes pay revocations; aligned,
//    disjoint file domains avoid them (ROMIO's alignment optimisation).
//  * Size-token bounce: multiple clients extending one file's EOF bounce
//    the metanode's size token (why nf=1 underperforms for coIO and rbIO).
//  * Per-stream service rate: a server serves each client stream at a
//    modest rate and a few streams in parallel, so aggregate bandwidth
//    needs enough concurrent writers (left side of Fig. 8).
//  * DDN stream thrash: too many concurrent streams degrade the arrays
//    (right side of Fig. 8, coIO's 64K drop).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fssim/image.hpp"
#include "fssim/token.hpp"
#include "machine/bgp.hpp"
#include "netsim/ion.hpp"
#include "obs/optrace.hpp"
#include "obs/telemetry.hpp"
#include "obs/obs.hpp"
#include "simcore/random.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"
#include "storsim/fabric.hpp"

namespace bgckpt::fs {

struct FsConfig {
  std::string name = "gpfs";
  sim::Bytes blockSize = 4 * sim::MiB;
  /// Per-stream service rate at one server (GPFS client/session ceiling).
  sim::Bandwidth writeStreamBandwidth = 40e6;
  sim::Bandwidth readStreamBandwidth = 45e6;
  /// Streams one server services concurrently.
  int serverConcurrency = 4;

  // --- locking (zeroed for the PVFS personality) ---
  bool usesTokens = true;
  sim::Duration tokenOpCost = 80e-6;
  sim::Duration revocationCost = 1.0e-3;
  sim::Duration sizeTokenBounceCost = 0.3e-3;

  // --- metadata ---
  sim::Duration createCost = 0.3e-3;
  sim::Duration openCost = 60e-6;
  sim::Duration closeCost = 150e-6;
  /// Creates get linearly slower with directory contention even below the
  /// thrash cliff: cost = createCost * (1 + pendingCreators / this).
  double createQueueScale = 1200;
  /// Pending creators in one directory beyond which creates thrash.
  int dirThrashThreshold = 5000;
  /// Median extra cost per create while thrashing (lognormal).
  sim::Duration dirThrashCost = 27e-3;
  double dirThrashSigma = 0.5;

  /// Client write-behind depth (1 = strictly synchronous block writes).
  int writeBehindDepth = 1;
};

/// Intrepid GPFS defaults (values above).
FsConfig gpfsConfig();

/// Intrepid PVFS: lock-free, no client cache, higher per-stream rate.
FsConfig pvfsConfig();

namespace detail {
struct FileState;  // defined in parallel_fs.cpp
}

/// Opaque per-open-file handle returned by open/create.
class OpenFile {
 public:
  OpenFile(std::string path, std::shared_ptr<detail::FileState> state)
      : path_(std::move(path)), state_(std::move(state)) {}
  const std::string& path() const { return path_; }

 private:
  friend class ParallelFsSim;
  std::string path_;
  std::shared_ptr<detail::FileState> state_;
};
using FileHandle = std::shared_ptr<OpenFile>;

class ParallelFsSim {
 public:
  ParallelFsSim(sim::Scheduler& sched, const machine::Machine& mach,
                net::IonForwarding& ion, stor::StorageFabric& fabric,
                std::uint64_t seed, FsConfig config,
                obs::Observability* obs = nullptr);

  /// Create a new file (directory insert + inode init). A live `otc`
  /// (propagated by value from the issuing strategy) receives the metadata,
  /// token-wait, and downstream ION/storage hop spans on every operation.
  sim::Task<FileHandle> create(int rank, std::string path,
                               obs::OpTraceContext otc = {});
  /// Open an existing file.
  sim::Task<FileHandle> open(int rank, std::string path,
                             obs::OpTraceContext otc = {});
  /// Write [offset, offset+len); optional payload records real content.
  sim::Task<> write(int rank, const FileHandle& fh, std::uint64_t offset,
                    sim::Bytes len, std::span<const std::byte> data = {},
                    obs::OpTraceContext otc = {});
  /// Read [offset, offset+len).
  sim::Task<> read(int rank, const FileHandle& fh, std::uint64_t offset,
                   sim::Bytes len, obs::OpTraceContext otc = {});
  /// Close: release tokens, commit metadata.
  sim::Task<> close(int rank, const FileHandle& fh,
                    obs::OpTraceContext otc = {});

  const FsConfig& config() const { return config_; }
  FsImage& image() { return image_; }
  const FsImage& image() const { return image_; }

  /// Aggregate counters for verification and Darshan-style reporting.
  std::uint64_t totalRevocations() const;
  std::uint64_t createsIssued() const { return creates_; }
  std::uint64_t writesIssued() const { return writes_; }

 private:
  struct Directory {
    explicit Directory(sim::Scheduler& sched)
        : queue(sched, 1, "fs-dir-queue") {}
    sim::Resource queue;
    std::uint64_t entries = 0;
  };

  Directory& directoryOf(const std::string& path);
  int serverOfBlock(const detail::FileState& fs,
                    std::uint64_t blockIndex) const;
  sim::Task<> writeBlocks(int rank, std::shared_ptr<detail::FileState> state,
                          std::uint64_t offset, sim::Bytes len,
                          obs::OpTraceContext otc);

  sim::Scheduler& sched_;
  const machine::Machine& mach_;
  net::IonForwarding& ion_;
  stor::StorageFabric& fabric_;
  obs::Observability* obs_;
  sim::RngStream rng_;
  FsConfig config_;
  FsImage image_;
  std::unordered_map<std::string, Directory> directories_;
  std::unordered_map<std::string, std::shared_ptr<detail::FileState>> files_;
  std::uint64_t nextFileId_ = 1;
  std::uint64_t creates_ = 0;
  std::uint64_t writes_ = 0;
  // Metric handles, resolved once at construction (null when unobserved).
  obs::Histogram* mCreateLatency_ = nullptr;
  obs::Histogram* mOpenLatency_ = nullptr;
  obs::Histogram* mWriteLatency_ = nullptr;
  obs::Histogram* mCloseLatency_ = nullptr;
  obs::Counter* mTokenRevocations_ = nullptr;
  obs::Counter* mTokenAcquires_ = nullptr;
  obs::Counter* mSizeTokenBounces_ = nullptr;
  // Sampled telemetry: lock-manager pressure over time (aggregate across
  // files — the per-file managers share the simulated token server role).
  obs::Probe* tTokenQueue_ = nullptr;    // writers queued on a token server
  obs::Probe* tTokenHoldings_ = nullptr; // distinct live byte-range tokens
  obs::Probe* tTokenGrants_ = nullptr;   // negotiated grants (rate)
  obs::Probe* tRevocations_ = nullptr;   // revocation round trips (rate)
  obs::Probe* tDirQueue_ = nullptr;      // creators queued on a directory
  obs::Probe* tCreates_ = nullptr;       // completed creates (rate)
};

}  // namespace bgckpt::fs
