#include "fssim/token.hpp"

#include "simcore/simcheck.hpp"

#include <algorithm>
#include <limits>

namespace bgckpt::fs {

namespace {
constexpr std::uint64_t kWholeFile = std::numeric_limits<std::uint64_t>::max();
}

RangeTokenManager::AcquireResult RangeTokenManager::acquire(int client,
                                                            BlockRange range) {
  return acquire(client, range, range);
}

RangeTokenManager::AcquireResult RangeTokenManager::acquire(
    int client, BlockRange required, BlockRange desired) {
  SIM_CHECK(required.hi > required.lo, "token range must be non-empty");
  SIM_CHECK(desired.lo <= required.lo && desired.hi >= required.hi,
            "desired token range must contain the required range");
  AcquireResult result;
  if (holds(client, required)) {
    result.alreadyHeld = true;
    return result;
  }
  ++totalGrants_;

  if (virgin_) {
    // Optimistic whole-file grant to the first client.
    virgin_ = false;
    holdings_.emplace(0, Holding{kWholeFile, client});
    return result;
  }

  // Revoke every holding conflicting with `required`. A revoked holder
  // relinquishes its whole overlap with `desired`; it keeps only the parts
  // outside `desired`.
  std::uint64_t grantLo = required.lo;
  std::uint64_t grantHi = required.hi;
  auto it = holdings_.upper_bound(required.lo);
  if (it != holdings_.begin()) --it;
  while (it != holdings_.end() && it->first < required.hi) {
    const std::uint64_t hLo = it->first;
    const std::uint64_t hHi = it->second.hi;
    const int hClient = it->second.client;
    if (hHi <= required.lo) {
      ++it;
      continue;
    }
    it = holdings_.erase(it);
    if (hClient != client) ++result.revocations;
    // Taken: H intersect desired. Kept: below desired.lo / above desired.hi.
    grantLo = std::min(grantLo, std::max(hLo, desired.lo));
    grantHi = std::max(grantHi, std::min(hHi, desired.hi));
    if (hLo < desired.lo)
      holdings_.emplace(hLo, Holding{desired.lo, hClient});
    if (hHi > desired.hi)
      it = holdings_.emplace(desired.hi, Holding{hHi, hClient}).first;
  }
  totalRevocations_ += static_cast<std::uint64_t>(result.revocations);

  // Claim free space inside `desired` adjacent to the grant, stopping at
  // the nearest remaining holdings.
  {
    auto next = holdings_.lower_bound(grantHi);
    // A holding straddling grantHi cannot exist (it would have conflicted),
    // so the next holding's lo bounds the free extension.
    const std::uint64_t freeHi =
        next == holdings_.end() ? kWholeFile : next->first;
    grantHi = std::max(grantHi, std::min(desired.hi, freeHi));
    auto prev = holdings_.lower_bound(grantLo);
    const std::uint64_t freeLo =
        prev == holdings_.begin() ? 0 : std::prev(prev)->second.hi;
    grantLo = std::min(grantLo, std::max(desired.lo, freeLo));
  }

  insertMerged(client, {grantLo, grantHi});
  return result;
}

bool RangeTokenManager::holds(int client, BlockRange range) const {
  std::uint64_t cursor = range.lo;
  auto it = holdings_.upper_bound(range.lo);
  if (it != holdings_.begin()) --it;
  for (; it != holdings_.end() && it->first < range.hi; ++it) {
    if (it->second.hi <= cursor) continue;
    if (it->second.client != client) return false;
    if (it->first > cursor) return false;  // gap: nobody holds it
    cursor = it->second.hi;
    if (cursor >= range.hi) return true;
  }
  return cursor >= range.hi;
}

void RangeTokenManager::releaseClient(int client) {
  for (auto it = holdings_.begin(); it != holdings_.end();) {
    if (it->second.client == client)
      it = holdings_.erase(it);
    else
      ++it;
  }
}

void RangeTokenManager::insertMerged(int client, BlockRange range) {
  // Merge with adjacent holdings of the same client.
  std::uint64_t lo = range.lo;
  std::uint64_t hi = range.hi;
  auto it = holdings_.lower_bound(lo);
  if (it != holdings_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.client == client && prev->second.hi == lo) {
      lo = prev->first;
      holdings_.erase(prev);
    }
  }
  it = holdings_.lower_bound(hi);
  if (it != holdings_.end() && it->second.client == client && it->first == hi) {
    hi = it->second.hi;
    holdings_.erase(it);
  }
  holdings_.emplace(lo, Holding{hi, client});
}

}  // namespace bgckpt::fs
