// Logical file images.
//
// The simulator separates *timing* (modelled by the GPFS/PVFS engines) from
// *content*. Every simulated write is also recorded here, so tests can
// verify correctness properties that the paper's strategies must uphold:
// written extents tile the file exactly (no holes, no double-writes of
// conflicting data), and — when callers supply real payload bytes — the
// final byte content is identical across I/O strategies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace bgckpt::fs {

/// A half-open byte range [offset, offset + length).
struct ByteRange {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  std::uint64_t end() const { return offset + length; }
  bool operator==(const ByteRange&) const = default;
};

class FileImage {
 public:
  /// Record a write. `data`, when non-empty, must be exactly `range.length`
  /// bytes; content mode and size-only mode can be mixed freely (size-only
  /// writes blank out any overlapped content).
  void recordWrite(ByteRange range, std::span<const std::byte> data = {});

  /// Highest written offset (the file size for append-style writers).
  std::uint64_t size() const { return size_; }

  /// Total bytes covered by written extents (overlaps counted once).
  std::uint64_t coveredBytes() const;

  /// True when the written extents tile [0, length) with no gap.
  bool coversExactly(std::uint64_t length) const;

  /// Uncovered holes within [0, length).
  std::vector<ByteRange> gaps(std::uint64_t length) const;

  /// Number of distinct writes recorded.
  std::uint64_t writeCount() const { return writeCount_; }

  /// Bytes written including overlap re-writes.
  std::uint64_t bytesWritten() const { return bytesWritten_; }

  /// Read back content. Unwritten or size-only bytes read as zero.
  std::vector<std::byte> readBytes(ByteRange range) const;

  /// FNV-1a hash over the full [0, size()) content (zeros for holes).
  std::uint64_t contentHash() const;

 private:
  struct Extent {
    std::uint64_t length = 0;
    std::optional<std::vector<std::byte>> data;  // nullopt: size-only
  };

  // Non-overlapping extents keyed by start offset.
  std::map<std::uint64_t, Extent> extents_;
  std::uint64_t size_ = 0;
  std::uint64_t writeCount_ = 0;
  std::uint64_t bytesWritten_ = 0;
};

/// The namespace of one simulated filesystem.
class FsImage {
 public:
  FileImage& file(const std::string& path) { return files_[path]; }
  const FileImage* find(const std::string& path) const;
  bool exists(const std::string& path) const {
    return files_.contains(path);
  }
  std::size_t fileCount() const { return files_.size(); }
  std::uint64_t totalBytesWritten() const;

  const std::map<std::string, FileImage>& files() const { return files_; }

 private:
  std::map<std::string, FileImage> files_;
};

}  // namespace bgckpt::fs
