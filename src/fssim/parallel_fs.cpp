#include "fssim/parallel_fs.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bgckpt::fs {

namespace detail {

struct FileState {
  explicit FileState(sim::Scheduler& sched)
      : tokenServer(sched, 1, "fs-token-server"),
        metanode(sched, 1, "fs-metanode") {}

  std::string path;
  std::uint64_t fileId = 0;
  RangeTokenManager tokens;
  sim::Resource tokenServer;  // serialises negotiations
  sim::Resource metanode;     // serialises size updates
  std::uint64_t sizeCommitted = 0;
  int lastExtender = -1;
};

}  // namespace detail

using detail::FileState;

FsConfig gpfsConfig() { return FsConfig{}; }

FsConfig pvfsConfig() {
  FsConfig cfg;
  cfg.name = "pvfs";
  cfg.usesTokens = false;
  cfg.tokenOpCost = 0.0;
  cfg.revocationCost = 0.0;
  cfg.sizeTokenBounceCost = 0.0;
  // PVFS: no client cache or lock overhead; per-stream service runs at the
  // hardware server rate, but small-file metadata goes through a single
  // metadata server with a flat (heavier) create cost and no thrash cliff.
  cfg.writeStreamBandwidth = 95e6;
  cfg.readStreamBandwidth = 120e6;
  cfg.createCost = 1.0e-3;
  cfg.createQueueScale = 1e18;       // flat MDS: no crowd dependence
  cfg.dirThrashThreshold = 1 << 30;  // no thrash regime
  return cfg;
}

namespace {

std::string directoryName(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? std::string() : path.substr(0, pos);
}

}  // namespace

ParallelFsSim::ParallelFsSim(sim::Scheduler& sched,
                             const machine::Machine& mach,
                             net::IonForwarding& ion,
                             stor::StorageFabric& fabric, std::uint64_t seed,
                             FsConfig config, obs::Observability* obs)
    : sched_(sched),
      mach_(mach),
      ion_(ion),
      fabric_(fabric),
      obs_(obs),
      rng_(seed, "fssim"),
      config_(std::move(config)) {
  if (obs_) {
    auto& m = obs_->metrics();
    // Bin spans chosen for the paper's regimes: creates stretch to whole
    // seconds under 1PFPP directory thrash; opens/closes are sub-ms
    // metadata ops; writes reach seconds when servers queue.
    mCreateLatency_ = &m.histogram("fs.create.latency", 0.0, 1.0, 100);
    mOpenLatency_ = &m.histogram("fs.open.latency", 0.0, 0.01, 50);
    mWriteLatency_ = &m.histogram("fs.write.latency", 0.0, 5.0, 100);
    mCloseLatency_ = &m.histogram("fs.close.latency", 0.0, 0.01, 50);
    mTokenAcquires_ = &m.counter("fs.token.acquires");
    mTokenRevocations_ = &m.counter("fs.token.revocations");
    mSizeTokenBounces_ = &m.counter("fs.token.size_bounces");
    tTokenQueue_ = &obs_->telemetry().probe("fs.token.queue",
                                            obs::ProbeKind::kGauge);
    tTokenHoldings_ = &obs_->telemetry().probe("fs.token.holdings",
                                               obs::ProbeKind::kGauge);
    tTokenGrants_ = &obs_->telemetry().probe("fs.token.grants",
                                             obs::ProbeKind::kRate);
    tRevocations_ = &obs_->telemetry().probe("fs.token.revocations",
                                             obs::ProbeKind::kRate);
    tDirQueue_ = &obs_->telemetry().probe("fs.dir.queue",
                                          obs::ProbeKind::kGauge);
    tCreates_ = &obs_->telemetry().probe("fs.creates", obs::ProbeKind::kRate);
  }
}

ParallelFsSim::Directory& ParallelFsSim::directoryOf(const std::string& path) {
  return directories_.try_emplace(directoryName(path), sched_).first->second;
}

sim::Task<FileHandle> ParallelFsSim::create(int rank, std::string path,
                                            obs::OpTraceContext otc) {
  const sim::SimTime opStart = sched_.now();
  auto& dir = directoryOf(path);
  // Function-ship the request to the ION, then serialise on the directory.
  co_await sched_.delay(ion_.requestOverhead());
  if (tDirQueue_) tDirQueue_->add(1.0);
  co_await dir.queue.acquire();
  if (tDirQueue_) tDirQueue_->add(-1.0);
  {
    sim::ScopedTokens hold(dir.queue, 1);
    // Directory-block contention grows with the pending-creator crowd even
    // in the healthy regime...
    const auto q = static_cast<double>(dir.queue.queueLength());
    sim::Duration cost =
        config_.createCost * (1.0 + q / config_.createQueueScale);
    // ...and beyond the cliff, every insert pays token-storm revocation
    // ping-pong on the directory blocks.
    if (dir.queue.queueLength() >
        static_cast<std::size_t>(config_.dirThrashThreshold)) {
      cost += rng_.lognormal(config_.dirThrashCost, config_.dirThrashSigma);
    }
    co_await sched_.delay(cost);
    ++dir.entries;
  }

  std::shared_ptr<FileState> state;
  {
    auto [it, inserted] = files_.try_emplace(path);
    if (inserted) {
      it->second = std::make_shared<FileState>(sched_);
      it->second->path = path;
      it->second->fileId = nextFileId_++;
    }
    state = it->second;
  }
  image_.file(path);  // touch
  ++creates_;
  otc.hop(obs::Hop::kFsCreate, opStart, sched_.now());
  if (obs_) {
    if (tCreates_) tCreates_->add(1.0);
    mCreateLatency_->add(sched_.now() - opStart);
    if (obs_->tracing(obs::Layer::kFilesystem))
      obs_->complete(obs::Layer::kFilesystem, rank, "create", opStart,
                     sched_.now());
  }
  co_return std::make_shared<OpenFile>(std::move(path), std::move(state));
}

sim::Task<FileHandle> ParallelFsSim::open(int rank, std::string path,
                                          obs::OpTraceContext otc) {
  const sim::SimTime opStart = sched_.now();
  auto it = files_.find(path);
  if (it == files_.end())
    throw std::runtime_error("fssim: open of nonexistent file " + path);
  auto state = it->second;
  // Inode token fetch through the file's metanode.
  co_await sched_.delay(ion_.requestOverhead());
  co_await state->metanode.acquire();
  {
    sim::ScopedTokens hold(state->metanode, 1);
    co_await sched_.delay(config_.openCost);
  }
  otc.hop(obs::Hop::kFsOpen, opStart, sched_.now());
  if (obs_) {
    mOpenLatency_->add(sched_.now() - opStart);
    if (obs_->tracing(obs::Layer::kFilesystem))
      obs_->complete(obs::Layer::kFilesystem, rank, "open", opStart,
                     sched_.now());
  }
  co_return std::make_shared<OpenFile>(std::move(path), std::move(state));
}

sim::Task<> ParallelFsSim::write(int rank, const FileHandle& fh,
                                 std::uint64_t offset, sim::Bytes len,
                                 std::span<const std::byte> data,
                                 obs::OpTraceContext otc) {
  if (!fh || !fh->state_) throw std::runtime_error("fssim: write on bad handle");
  if (len == 0) co_return;
  auto state = fh->state_;
  const sim::SimTime opStart = sched_.now();

  // 1. Byte-range token acquisition (GPFS personality only).
  if (config_.usesTokens) {
    const BlockRange blocks{offset / config_.blockSize,
                            (offset + len - 1) / config_.blockSize + 1};
    if (!state->tokens.holds(rank, blocks)) {
      const sim::SimTime tokenStart = sched_.now();
      if (tTokenQueue_) tTokenQueue_->add(1.0);
      co_await state->tokenServer.acquire();
      if (tTokenQueue_) tTokenQueue_->add(-1.0);
      {
        sim::ScopedTokens hold(state->tokenServer, 1);
        // Ascending-writer heuristic: desire everything from here up, settle
        // for what conflicts least (see RangeTokenManager::acquire).
        const auto h0 = state->tokens.holdingCount();
        const auto result = state->tokens.acquire(
            rank, blocks,
            BlockRange{blocks.lo, std::numeric_limits<std::uint64_t>::max()});
        if (obs_) {
          mTokenAcquires_->add();
          mTokenRevocations_->add(result.revocations);
          if (tTokenHoldings_)
            tTokenHoldings_->add(
                static_cast<double>(state->tokens.holdingCount()) -
                static_cast<double>(h0));
          if (tTokenGrants_ && !result.alreadyHeld) tTokenGrants_->add(1.0);
          if (tRevocations_ && result.revocations > 0)
            tRevocations_->add(static_cast<double>(result.revocations));
        }
        co_await sched_.delay(
            config_.tokenOpCost +
            static_cast<double>(result.revocations) * config_.revocationCost);
      }
      // The whole negotiation — queueing on the token server plus the op
      // and revocation costs — is lock-manager wait, not data transfer;
      // blocked-time attribution separates it from the write proper.
      otc.hop(obs::Hop::kTokenWait, tokenStart, sched_.now());
      if (obs_)
        obs_->complete(obs::Layer::kFilesystem, rank, "token_wait", tokenStart,
                       sched_.now());
    }
  }

  // 2. Size-token bounce when extending EOF after another client did.
  if (offset + len > state->sizeCommitted) {
    const sim::SimTime sizeStart = sched_.now();
    co_await state->metanode.acquire();
    {
      sim::ScopedTokens hold(state->metanode, 1);
      if (config_.usesTokens && state->lastExtender != -1 &&
          state->lastExtender != rank) {
        if (obs_) mSizeTokenBounces_->add();
        co_await sched_.delay(config_.sizeTokenBounceCost);
      }
      state->lastExtender = rank;
      state->sizeCommitted = std::max(state->sizeCommitted, offset + len);
    }
    if (sched_.now() > sizeStart) {
      otc.hop(obs::Hop::kTokenWait, sizeStart, sched_.now());
      if (obs_)
        obs_->complete(obs::Layer::kFilesystem, rank, "token_wait", sizeStart,
                       sched_.now());
    }
  }

  // 3. Data path, block by block.
  co_await writeBlocks(rank, state, offset, len, otc);

  image_.file(state->path).recordWrite({offset, len}, data);
  ++writes_;
  if (obs_) {
    mWriteLatency_->add(sched_.now() - opStart);
    if (obs_->tracing(obs::Layer::kFilesystem))
      obs_->completeBytes(obs::Layer::kFilesystem, rank, "write", opStart,
                          sched_.now(), len);
  }
}

sim::Task<> ParallelFsSim::writeBlocks(int rank,
                                       std::shared_ptr<FileState> state,
                                       std::uint64_t offset, sim::Bytes len,
                                       obs::OpTraceContext otc) {
  // Stream identity: this client writing this file. Sequential per-client
  // block writes (writeBehindDepth == 1 models GPFS-over-ciod behaviour
  // observed on BG/P: each 4 MiB block is shipped and acknowledged in turn).
  const stor::StreamId stream =
      state->fileId * 1000003ULL + static_cast<std::uint64_t>(rank);
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + len;
  while (cursor < end) {
    const std::uint64_t block = cursor / config_.blockSize;
    const std::uint64_t blockEnd = (block + 1) * config_.blockSize;
    const sim::Bytes chunk = std::min<std::uint64_t>(end, blockEnd) - cursor;
    const int server = serverOfBlock(*state, block);
    co_await ion_.forward(rank, chunk, otc);
    co_await fabric_.write(server, stream, chunk,
                           config_.writeStreamBandwidth, otc);
    cursor += chunk;
  }
}

sim::Task<> ParallelFsSim::read(int rank, const FileHandle& fh,
                                std::uint64_t offset, sim::Bytes len,
                                obs::OpTraceContext otc) {
  if (!fh || !fh->state_) throw std::runtime_error("fssim: read on bad handle");
  auto state = fh->state_;
  const stor::StreamId stream =
      state->fileId * 1000003ULL + static_cast<std::uint64_t>(rank);
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + len;
  while (cursor < end) {
    const std::uint64_t block = cursor / config_.blockSize;
    const std::uint64_t blockEnd = (block + 1) * config_.blockSize;
    const sim::Bytes chunk = std::min<std::uint64_t>(end, blockEnd) - cursor;
    const int server = serverOfBlock(*state, block);
    co_await fabric_.read(server, stream, chunk, config_.readStreamBandwidth,
                          otc);
    co_await ion_.forward(rank, chunk, otc);  // data flows down to the pset
    cursor += chunk;
  }
}

sim::Task<> ParallelFsSim::close(int rank, const FileHandle& fh,
                                 obs::OpTraceContext otc) {
  if (!fh || !fh->state_) co_return;
  auto state = fh->state_;
  const sim::SimTime opStart = sched_.now();
  if (config_.usesTokens) {
    const auto h0 = state->tokens.holdingCount();
    state->tokens.releaseClient(rank);
    if (tTokenHoldings_)
      tTokenHoldings_->add(static_cast<double>(state->tokens.holdingCount()) -
                           static_cast<double>(h0));
  }
  co_await state->metanode.acquire();
  {
    sim::ScopedTokens hold(state->metanode, 1);
    co_await sched_.delay(config_.closeCost);
  }
  otc.hop(obs::Hop::kFsClose, opStart, sched_.now());
  if (obs_) {
    mCloseLatency_->add(sched_.now() - opStart);
    if (obs_->tracing(obs::Layer::kFilesystem))
      obs_->complete(obs::Layer::kFilesystem, rank, "close", opStart,
                     sched_.now());
  }
}

int ParallelFsSim::serverOfBlock(const FileState& fs,
                                 std::uint64_t blockIndex) const {
  // Round-robin striping across all servers, rotated per file.
  const auto servers = static_cast<std::uint64_t>(fabric_.numServers());
  return static_cast<int>((fs.fileId * 7919 + blockIndex) % servers);
}

std::uint64_t ParallelFsSim::totalRevocations() const {
  std::uint64_t total = 0;
  for (const auto& [path, state] : files_)
    total += state->tokens.totalRevocations();
  return total;
}

}  // namespace bgckpt::fs
