// GPFS-style byte-range token manager (one instance per file).
//
// GPFS serialises concurrent writers with distributed byte-range tokens at
// filesystem-block granularity. A client must hold a write token covering a
// block before writing it; a conflicting request forces the token manager to
// *revoke* the overlapping tokens from their holders (an expensive round
// trip plus a dirty-data flush at the holder). This class implements the
// bookkeeping; the GPFS engine charges time per operation and per
// revocation.
//
// Granting policy mirrors GPFS's optimistic negotiation: the first client
// to touch a file is granted the whole file (so a lone writer never
// negotiates again); later conflicting requests carve their needed range
// out of existing holdings.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace bgckpt::fs {

/// A half-open block range [lo, hi).
struct BlockRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const BlockRange&) const = default;
};

class RangeTokenManager {
 public:
  /// Result of an acquire: how many holders had to be revoked, and whether
  /// the requester already held the full range (no token traffic at all).
  struct AcquireResult {
    int revocations = 0;
    bool alreadyHeld = false;
  };

  /// Ensure `client` holds a write token covering `required`.
  ///
  /// GPFS negotiation distinguishes the *required* range (must be granted)
  /// from a *desired* range (granted opportunistically): a holder whose
  /// token conflicts with `required` relinquishes its whole overlap with
  /// `desired`, and free space inside `desired` adjacent to the grant is
  /// claimed without cost. ROMIO-style ascending writers pass
  /// desired = [required.lo, infinity) and settle into disjoint domains
  /// after one revocation each. With `desired` omitted, exactly `required`
  /// is negotiated.
  AcquireResult acquire(int client, BlockRange required);
  AcquireResult acquire(int client, BlockRange required, BlockRange desired);

  /// True when `client` already holds every block of `range`.
  bool holds(int client, BlockRange range) const;

  /// Drop all of a client's tokens (file close).
  void releaseClient(int client);

  /// Number of distinct token holdings (diagnostic).
  std::size_t holdingCount() const { return holdings_.size(); }

  /// Total revocations performed over this manager's lifetime.
  std::uint64_t totalRevocations() const { return totalRevocations_; }

  /// Grants that needed token traffic (acquires not already satisfied by a
  /// held range); feeds the fs.token.grants telemetry rate.
  std::uint64_t totalGrants() const { return totalGrants_; }

 private:
  struct Holding {
    std::uint64_t hi = 0;
    int client = -1;
  };

  void insertMerged(int client, BlockRange range);

  // Non-overlapping holdings keyed by lo block.
  std::map<std::uint64_t, Holding> holdings_;
  bool virgin_ = true;  // no client has touched the file yet
  std::uint64_t totalRevocations_ = 0;
  std::uint64_t totalGrants_ = 0;
};

}  // namespace bgckpt::fs
