#include "fssim/image.hpp"

#include "simcore/simcheck.hpp"

#include <algorithm>

namespace bgckpt::fs {

void FileImage::recordWrite(ByteRange range, std::span<const std::byte> data) {
  if (range.length == 0) return;
  SIM_CHECK(data.empty() || data.size() == range.length,
            "write payload size must match its byte range");
  ++writeCount_;
  bytesWritten_ += range.length;
  size_ = std::max(size_, range.end());

  // Trim or split any existing extents overlapping the new range.
  auto it = extents_.upper_bound(range.offset);
  if (it != extents_.begin()) --it;
  while (it != extents_.end() && it->first < range.end()) {
    const std::uint64_t exStart = it->first;
    const std::uint64_t exEnd = exStart + it->second.length;
    if (exEnd <= range.offset) {
      ++it;
      continue;
    }
    Extent old = std::move(it->second);
    it = extents_.erase(it);
    if (exStart < range.offset) {
      // Keep the left remnant.
      Extent left;
      left.length = range.offset - exStart;
      if (old.data)
        left.data = std::vector<std::byte>(old.data->begin(),
                                           old.data->begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   left.length));
      extents_.emplace(exStart, std::move(left));
    }
    if (exEnd > range.end()) {
      // Keep the right remnant.
      Extent right;
      right.length = exEnd - range.end();
      if (old.data)
        right.data = std::vector<std::byte>(
            old.data->end() - static_cast<std::ptrdiff_t>(right.length),
            old.data->end());
      it = extents_.emplace(range.end(), std::move(right)).first;
    }
  }

  Extent ext;
  ext.length = range.length;
  if (!data.empty()) ext.data = std::vector<std::byte>(data.begin(), data.end());
  extents_.emplace(range.offset, std::move(ext));
}

std::uint64_t FileImage::coveredBytes() const {
  std::uint64_t covered = 0;
  for (const auto& [off, ext] : extents_) covered += ext.length;
  return covered;
}

bool FileImage::coversExactly(std::uint64_t length) const {
  return gaps(length).empty() && size_ <= length;
}

std::vector<ByteRange> FileImage::gaps(std::uint64_t length) const {
  std::vector<ByteRange> result;
  std::uint64_t cursor = 0;
  for (const auto& [off, ext] : extents_) {
    if (off >= length) break;
    if (off > cursor) result.push_back({cursor, off - cursor});
    cursor = std::max(cursor, off + ext.length);
  }
  if (cursor < length) result.push_back({cursor, length - cursor});
  return result;
}

std::vector<std::byte> FileImage::readBytes(ByteRange range) const {
  std::vector<std::byte> out(range.length, std::byte{0});
  auto it = extents_.upper_bound(range.offset);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->first < range.end(); ++it) {
    const std::uint64_t exStart = it->first;
    const std::uint64_t exEnd = exStart + it->second.length;
    if (exEnd <= range.offset || !it->second.data) continue;
    const std::uint64_t lo = std::max(exStart, range.offset);
    const std::uint64_t hi = std::min(exEnd, range.end());
    std::copy_n(it->second.data->begin() +
                    static_cast<std::ptrdiff_t>(lo - exStart),
                hi - lo,
                out.begin() + static_cast<std::ptrdiff_t>(lo - range.offset));
  }
  return out;
}

std::uint64_t FileImage::contentHash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto feed = [&h](std::byte b) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  };
  std::uint64_t cursor = 0;
  for (const auto& [off, ext] : extents_) {
    for (; cursor < off; ++cursor) feed(std::byte{0});
    if (ext.data) {
      for (std::byte b : *ext.data) feed(b);
    } else {
      for (std::uint64_t i = 0; i < ext.length; ++i) feed(std::byte{0});
    }
    cursor = off + ext.length;
  }
  return h;
}

const FileImage* FsImage::find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::uint64_t FsImage::totalBytesWritten() const {
  std::uint64_t total = 0;
  for (const auto& [path, img] : files_) total += img.bytesWritten();
  return total;
}

}  // namespace bgckpt::fs
