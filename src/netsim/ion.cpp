#include "netsim/ion.hpp"

namespace bgckpt::net {

IonForwarding::IonForwarding(sim::Scheduler& sched,
                             const machine::Machine& mach,
                             obs::Observability* obs)
    : sched_(sched), mach_(mach), obs_(obs) {
  for (int p = 0; p < mach.numPsets(); ++p) uplink_.emplace_back(sched, 1, "ion-uplink");
  if (obs_) {
    auto& m = obs_->metrics();
    mRequests_ = &m.counter("net.ion.requests");
    mBytes_ = &m.counter("net.ion.bytes");
    mBusy_ = &m.gauge("net.ion.busy_seconds");
    m.gauge("net.ion.links").set(static_cast<double>(mach.numPsets()));
  }
}

sim::Task<> IonForwarding::forward(int rank, sim::Bytes bytes) {
  const auto pset = static_cast<std::size_t>(mach_.psetOfRank(rank));
  {
    auto link = co_await sim::ScopedTokens::take(uplink_[pset], 1);
    const sim::Duration busy =
        mach_.io().forwardingOverhead +
        sim::transferTime(bytes, mach_.io().ionUplinkBandwidth);
    const sim::SimTime start = sched_.now();
    co_await sched_.delay(busy);
    if (obs_) {
      mRequests_->add();
      mBytes_->add(bytes);
      mBusy_->add(busy);
      if (obs_->tracing(obs::Layer::kNetwork))
        obs_->completeBytes(obs::Layer::kNetwork, rank, "ion.forward", start,
                            sched_.now(), bytes);
    }
  }
  ++requests_;
  bytes_ += bytes;
}

}  // namespace bgckpt::net
