#include "netsim/ion.hpp"

namespace bgckpt::net {

IonForwarding::IonForwarding(sim::Scheduler& sched,
                             const machine::Machine& mach)
    : sched_(sched), mach_(mach) {
  uplink_.reserve(static_cast<std::size_t>(mach.numPsets()));
  for (int p = 0; p < mach.numPsets(); ++p)
    uplink_.push_back(std::make_unique<sim::Resource>(sched, 1));
}

sim::Task<> IonForwarding::forward(int rank, sim::Bytes bytes) {
  const auto pset = static_cast<std::size_t>(mach_.psetOfRank(rank));
  co_await uplink_[pset]->acquire();
  {
    sim::ScopedTokens link(*uplink_[pset], 1);
    co_await sched_.delay(
        mach_.io().forwardingOverhead +
        sim::transferTime(bytes, mach_.io().ionUplinkBandwidth));
  }
  ++requests_;
  bytes_ += bytes;
}

}  // namespace bgckpt::net
