#include "netsim/ion.hpp"

namespace bgckpt::net {

IonForwarding::IonForwarding(sim::Scheduler& sched,
                             const machine::Machine& mach,
                             obs::Observability* obs)
    : sched_(sched), mach_(mach), obs_(obs) {
  for (int p = 0; p < mach.numPsets(); ++p) uplink_.emplace_back(sched, 1, "ion-uplink");
  if (obs_) {
    auto& m = obs_->metrics();
    mRequests_ = &m.counter("net.ion.requests");
    mBytes_ = &m.counter("net.ion.bytes");
    mBusy_ = &m.gauge("net.ion.busy_seconds");
    m.gauge("net.ion.links").set(static_cast<double>(mach.numPsets()));
    tQueue_ = &obs_->telemetry().probe("net.ion.queue", obs::ProbeKind::kGauge,
                                       mach.numPsets());
    tBusy_ = &obs_->telemetry().probe("net.ion.busy", obs::ProbeKind::kGauge,
                                      mach.numPsets());
    tBytes_ = &obs_->telemetry().probe("net.ion.bytes", obs::ProbeKind::kRate,
                                       mach.numPsets());
  }
}

sim::Task<> IonForwarding::forward(int rank, sim::Bytes bytes,
                                   obs::OpTraceContext otc) {
  const auto pset = static_cast<std::size_t>(mach_.psetOfRank(rank));
  const int psetIdx = static_cast<int>(pset);
  const sim::SimTime queueStart = sched_.now();
  if (tQueue_) tQueue_->add(psetIdx, 1.0);
  {
    auto link = co_await sim::ScopedTokens::take(uplink_[pset], 1);
    if (tQueue_) tQueue_->add(psetIdx, -1.0);
    otc.hop(obs::Hop::kIonQueue, queueStart, sched_.now());
    if (tBusy_) tBusy_->add(psetIdx, 1.0);
    const sim::Duration busy =
        mach_.io().forwardingOverhead +
        sim::transferTime(bytes, mach_.io().ionUplinkBandwidth);
    const sim::SimTime start = sched_.now();
    co_await sched_.delay(busy);
    otc.hop(obs::Hop::kIonForward, start, sched_.now(), bytes);
    if (obs_) {
      mRequests_->add();
      mBytes_->add(bytes);
      mBusy_->add(busy);
      if (tBytes_) tBytes_->add(psetIdx, static_cast<double>(bytes));
      if (obs_->tracing(obs::Layer::kNetwork))
        obs_->completeBytes(obs::Layer::kNetwork, rank, "ion.forward", start,
                            sched_.now(), bytes);
    }
    if (tBusy_) tBusy_->add(psetIdx, -1.0);
  }
  ++requests_;
  bytes_ += bytes;
}

}  // namespace bgckpt::net
