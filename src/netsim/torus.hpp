// 3-D torus network model.
//
// We model the torus at endpoint granularity: a message holds its source
// node's injection port (NIC serialisation at link speed, shared by the
// node's ranks), flies for `hops * hopLatency`, then holds the destination
// node's ejection port while the receiver drains it at memory-copy speed.
// In-fabric link contention is deliberately not modelled: the checkpointing
// traffic patterns of this study (worker -> nearby writer aggregation,
// rank -> aggregator exchange within psets) are local, and their observed
// bottlenecks are endpoint fan-in and the storage path behind the IONs.
#pragma once

#include <deque>

#include "machine/bgp.hpp"
#include "obs/obs.hpp"
#include "obs/optrace.hpp"
#include "obs/telemetry.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"
#include "simcore/units.hpp"

namespace bgckpt::net {

class TorusNetwork {
 public:
  TorusNetwork(sim::Scheduler& sched, const machine::Machine& mach,
               obs::Observability* obs = nullptr);

  /// Move `bytes` from `srcRank` to `dstRank`; completes at delivery time
  /// (when the receiver has drained the message). A live `otc` (the
  /// sender's span context, riding by value) receives inject/flight/eject
  /// hop spans.
  sim::Task<> transfer(int srcRank, int dstRank, sim::Bytes bytes,
                       obs::OpTraceContext otc = {});

  /// Latency of a zero-contention transfer (for tests and cost estimates).
  sim::Duration uncontendedLatency(int srcRank, int dstRank,
                                   sim::Bytes bytes) const;

  std::uint64_t messagesDelivered() const { return messages_; }
  sim::Bytes bytesDelivered() const { return bytes_; }
  const sim::Accumulator& latencyStats() const { return latency_; }

  /// Endpoint ports, exposed so tests can occupy them and audit the
  /// acquire/release ordering of transfer() (e.g. prove that a slow or
  /// blocked receiver never pins the sender-side NIC token).
  sim::Resource& injectionPort(int node) {
    return injection_[static_cast<std::size_t>(node)];
  }
  sim::Resource& ejectionPort(int node) {
    return ejection_[static_cast<std::size_t>(node)];
  }

 private:
  sim::Scheduler& sched_;
  const machine::Machine& mach_;
  obs::Observability* obs_;
  sim::Bandwidth drainBandwidth_;  // receiver copy rate
  // Per-node ports stored by value. Resource is not movable, so a deque
  // (stable addresses, emplace-in-place) replaces the old unique_ptr
  // indirection — one pointer chase less on every acquire in the hot path.
  std::deque<sim::Resource> injection_;
  std::deque<sim::Resource> ejection_;
  std::uint64_t messages_ = 0;
  sim::Bytes bytes_ = 0;
  sim::Accumulator latency_;
  obs::Counter* mMessages_ = nullptr;
  obs::Counter* mBytes_ = nullptr;
  obs::Gauge* mBusy_ = nullptr;  // injection-link busy seconds
  // Sampled telemetry (aggregate across nodes; per-node series at 16K-64K
  // nodes would dwarf the simulation itself). Dormant until --telemetry.
  obs::Probe* tInjectBusy_ = nullptr;   // links currently serialising
  obs::Probe* tInjectQueue_ = nullptr;  // transfers waiting for a NIC token
  obs::Probe* tEjectBusy_ = nullptr;    // links currently draining
  obs::Probe* tEjectQueue_ = nullptr;   // transfers waiting for a drain port
  obs::Probe* tBytes_ = nullptr;        // delivered bytes (rate)
};

/// Cost model for the dedicated collective (tree) and barrier networks.
/// These are contention-free in practice for our workloads, so costs are
/// analytic rather than resource-based.
class CollectiveNetwork {
 public:
  explicit CollectiveNetwork(const machine::Machine& mach) : mach_(mach) {}

  /// Global-interrupt barrier over `parties` ranks.
  sim::Duration barrierCost(int parties) const;

  /// One-to-all broadcast of `bytes` over `parties` ranks on the tree.
  sim::Duration broadcastCost(int parties, sim::Bytes bytes) const;

  /// All-to-one reduction of `bytes` over `parties` ranks on the tree.
  sim::Duration reduceCost(int parties, sim::Bytes bytes) const;

 private:
  const machine::Machine& mach_;
};

}  // namespace bgckpt::net
