// I/O-node forwarding layer.
//
// On Blue Gene/P, compute nodes cannot talk to storage directly: every file
// system call is function-shipped over the collective network to the pset's
// dedicated I/O node (ION), which performs the operation against the
// storage fabric over 10 Gigabit Ethernet. This class models the per-pset
// uplink as a FIFO-served bandwidth resource plus a fixed per-request
// forwarding overhead.
#pragma once

#include <deque>

#include "machine/bgp.hpp"
#include "obs/obs.hpp"
#include "obs/optrace.hpp"
#include "obs/telemetry.hpp"
#include "simcore/resource.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/task.hpp"

namespace bgckpt::net {

class IonForwarding {
 public:
  IonForwarding(sim::Scheduler& sched, const machine::Machine& mach,
                obs::Observability* obs = nullptr);

  /// Ship `bytes` of payload from `rank`'s pset up to the storage fabric
  /// (or down, for reads — the link is modelled symmetrically). Completes
  /// when the ION has finished moving the data onto the Ethernet. A live
  /// `otc` receives the uplink queue-wait and forwarding hop spans.
  sim::Task<> forward(int rank, sim::Bytes bytes,
                      obs::OpTraceContext otc = {});

  /// Per-request software overhead of function shipping (no data).
  sim::Duration requestOverhead() const {
    return mach_.io().forwardingOverhead;
  }

  std::uint64_t requestsForwarded() const { return requests_; }
  sim::Bytes bytesForwarded() const { return bytes_; }

 private:
  sim::Scheduler& sched_;
  const machine::Machine& mach_;
  obs::Observability* obs_;
  std::deque<sim::Resource> uplink_;  // per pset, by value (non-movable)
  std::uint64_t requests_ = 0;
  sim::Bytes bytes_ = 0;
  // Metric handles, resolved once (null when unobserved).
  obs::Counter* mRequests_ = nullptr;
  obs::Counter* mBytes_ = nullptr;
  obs::Gauge* mBusy_ = nullptr;
  // Per-pset sampled series (one instance per ION uplink).
  obs::Probe* tQueue_ = nullptr;  // requests waiting for the uplink
  obs::Probe* tBusy_ = nullptr;   // uplink currently shipping (0/1)
  obs::Probe* tBytes_ = nullptr;  // forwarded bytes (rate)
};

}  // namespace bgckpt::net
