#include "netsim/torus.hpp"

#include <cmath>

namespace bgckpt::net {

using sim::Duration;

TorusNetwork::TorusNetwork(sim::Scheduler& sched,
                           const machine::Machine& mach,
                           obs::Observability* obs)
    : sched_(sched),
      mach_(mach),
      obs_(obs),
      // Receive-side drain: a memory copy sharing the node's memory system
      // with its other cores; use half the node memory bandwidth.
      drainBandwidth_(mach.compute().memoryBandwidth / 2.0) {
  for (int n = 0; n < mach.numNodes(); ++n) {
    injection_.emplace_back(sched, 1, "torus-injection");
    ejection_.emplace_back(sched, 1, "torus-ejection");
  }
  if (obs_) {
    auto& m = obs_->metrics();
    mMessages_ = &m.counter("net.torus.messages");
    mBytes_ = &m.counter("net.torus.bytes");
    mBusy_ = &m.gauge("net.torus.busy_seconds");
    m.gauge("net.torus.links").set(static_cast<double>(mach.numNodes()));
    tInjectBusy_ = &obs_->telemetry().probe("net.torus.inject.busy_links",
                                            obs::ProbeKind::kGauge);
    tInjectQueue_ = &obs_->telemetry().probe("net.torus.inject.queue",
                                             obs::ProbeKind::kGauge);
    tEjectBusy_ = &obs_->telemetry().probe("net.torus.eject.busy_links",
                                           obs::ProbeKind::kGauge);
    tEjectQueue_ = &obs_->telemetry().probe("net.torus.eject.queue",
                                            obs::ProbeKind::kGauge);
    tBytes_ = &obs_->telemetry().probe("net.torus.bytes",
                                       obs::ProbeKind::kRate);
  }
}

sim::Task<> TorusNetwork::transfer(int srcRank, int dstRank,
                                   sim::Bytes bytes,
                                   obs::OpTraceContext otc) {
  const auto& cc = mach_.compute();
  const int srcNode = mach_.nodeOfRank(srcRank);
  const int dstNode = mach_.nodeOfRank(dstRank);
  const double start = sched_.now();

  if (srcNode == dstNode) {
    // Intra-node: a memory copy plus software overhead.
    co_await sched_.delay(cc.mpiOverhead +
                          sim::transferTime(bytes, cc.memoryBandwidth));
    otc.hop(obs::Hop::kNetLocal, start, sched_.now(), bytes);
  } else {
    // Acquire/release ordering audit: the source NIC token is held only
    // across the serialisation delay and released (ScopedTokens scope ends)
    // BEFORE the flight delay and before the ejection port is requested.
    // A slow or blocked receiver therefore can never pin a sender-side NIC
    // token, and injection->ejection hold-and-wait (the classic endpoint
    // deadlock cycle) is impossible. torus_test's
    // SlowReceiverDoesNotDeadlockSenderNic regression locks this in.
    //
    // Fragmentation is batched analytically: instead of simulating the
    // message packet-by-packet (BG/P wormhole routing, 256-byte FLITs — an
    // rbIO writer handoff would be ~16K fragment events), the pipelined
    // transfer is costed in closed form as serialisation + hops * hopLatency,
    // so a handoff of any size is O(1) events. torus_test's
    // TransferEventCostIsConstantInMessageSize regression locks this in.
    if (tInjectQueue_) tInjectQueue_->add(1.0);
    co_await injection_[static_cast<std::size_t>(srcNode)].acquire();
    if (tInjectQueue_) tInjectQueue_->add(-1.0);
    {
      sim::ScopedTokens nic(injection_[static_cast<std::size_t>(srcNode)], 1);
      if (tInjectBusy_) tInjectBusy_->add(1.0);
      const sim::Duration busy =
          cc.mpiOverhead + sim::transferTime(bytes, cc.torusLinkBandwidth);
      co_await sched_.delay(busy);
      if (mBusy_) mBusy_->add(busy);
      if (tInjectBusy_) tInjectBusy_->add(-1.0);
    }
    otc.hop(obs::Hop::kNetInject, start, sched_.now(), bytes);
    // Flight time across the fabric.
    const sim::SimTime flightStart = sched_.now();
    const int hops = mach_.torusHops(srcNode, dstNode);
    co_await sched_.delay(static_cast<double>(hops) * cc.torusHopLatency);
    otc.hop(obs::Hop::kNetFlight, flightStart, sched_.now());
    // Receiver drain at the destination.
    const sim::SimTime ejectStart = sched_.now();
    if (tEjectQueue_) tEjectQueue_->add(1.0);
    co_await ejection_[static_cast<std::size_t>(dstNode)].acquire();
    if (tEjectQueue_) tEjectQueue_->add(-1.0);
    {
      sim::ScopedTokens port(ejection_[static_cast<std::size_t>(dstNode)], 1);
      if (tEjectBusy_) tEjectBusy_->add(1.0);
      co_await sched_.delay(sim::transferTime(bytes, drainBandwidth_));
      if (tEjectBusy_) tEjectBusy_->add(-1.0);
    }
    otc.hop(obs::Hop::kNetEject, ejectStart, sched_.now(), bytes);
  }

  ++messages_;
  bytes_ += bytes;
  latency_.add(sched_.now() - start);
  if (obs_) {
    mMessages_->add();
    mBytes_->add(bytes);
    if (tBytes_) tBytes_->add(static_cast<double>(bytes));
  }
}

Duration TorusNetwork::uncontendedLatency(int srcRank, int dstRank,
                                          sim::Bytes bytes) const {
  const auto& cc = mach_.compute();
  const int srcNode = mach_.nodeOfRank(srcRank);
  const int dstNode = mach_.nodeOfRank(dstRank);
  if (srcNode == dstNode)
    return cc.mpiOverhead + sim::transferTime(bytes, cc.memoryBandwidth);
  const int hops = mach_.torusHops(srcNode, dstNode);
  return cc.mpiOverhead + sim::transferTime(bytes, cc.torusLinkBandwidth) +
         static_cast<double>(hops) * cc.torusHopLatency +
         sim::transferTime(bytes, drainBandwidth_);
}

Duration CollectiveNetwork::barrierCost(int parties) const {
  const auto& cc = mach_.compute();
  // The global-interrupt network completes a barrier in near-constant time;
  // a small logarithmic term covers software arming.
  const double depth = parties > 1 ? std::ceil(std::log2(parties)) : 0.0;
  return cc.barrierLatency + 0.1e-6 * depth;
}

Duration CollectiveNetwork::broadcastCost(int parties,
                                          sim::Bytes bytes) const {
  const auto& cc = mach_.compute();
  const double depth = parties > 1 ? std::ceil(std::log2(parties)) : 0.0;
  return depth * cc.treeStageLatency +
         sim::transferTime(bytes, cc.treeLinkBandwidth);
}

Duration CollectiveNetwork::reduceCost(int parties, sim::Bytes bytes) const {
  // Same pipeline shape as broadcast on BG/P's combining tree.
  return broadcastCost(parties, bytes);
}

}  // namespace bgckpt::net
