#include "profiling/profile.hpp"

#include <algorithm>
#include <cmath>

namespace bgckpt::prof {

const char* opName(Op op) {
  switch (op) {
    case Op::kCreate: return "create";
    case Op::kOpen: return "open";
    case Op::kWrite: return "write";
    case Op::kClose: return "close";
    case Op::kSend: return "send";
    case Op::kRecv: return "recv";
    case Op::kOther: return "other";
  }
  return "?";
}

std::optional<Op> opFromName(std::string_view name) {
  for (const Op op : {Op::kCreate, Op::kOpen, Op::kWrite, Op::kClose,
                      Op::kSend, Op::kRecv, Op::kOther})
    if (name == opName(op)) return op;
  return std::nullopt;
}

std::vector<double> IoProfile::perRankEnvelope(int numRanks) const {
  std::vector<double> first(static_cast<std::size_t>(numRanks), 1e300);
  std::vector<double> last(static_cast<std::size_t>(numRanks), -1.0);
  for (const auto& r : records_) {
    if (r.rank < 0 || r.rank >= numRanks) continue;
    auto i = static_cast<std::size_t>(r.rank);
    first[i] = std::min(first[i], r.start);
    last[i] = std::max(last[i], r.end);
  }
  std::vector<double> result(static_cast<std::size_t>(numRanks), 0.0);
  for (std::size_t i = 0; i < result.size(); ++i)
    if (last[i] >= 0) result[i] = last[i] - first[i];
  return result;
}

std::vector<double> IoProfile::perRankBusy(int numRanks) const {
  std::vector<double> result(static_cast<std::size_t>(numRanks), 0.0);
  for (const auto& r : records_) {
    if (r.rank < 0 || r.rank >= numRanks) continue;
    result[static_cast<std::size_t>(r.rank)] += r.duration();
  }
  return result;
}

std::vector<int> IoProfile::activityTimeline(Op op, double binWidth,
                                             double horizon) const {
  if (binWidth <= 0 || horizon <= 0) return {};
  const auto bins = static_cast<std::size_t>(std::ceil(horizon / binWidth));
  std::vector<int> counts(bins, 0);
  for (const auto& r : records_) {
    if (r.op != op) continue;
    auto lo = static_cast<std::size_t>(
        std::max(0.0, std::floor(r.start / binWidth)));
    auto hi = static_cast<std::size_t>(
        std::max(0.0, std::ceil(r.end / binWidth)));
    hi = std::min(hi, bins);
    for (std::size_t b = lo; b < hi && b < bins; ++b) ++counts[b];
  }
  return counts;
}

sim::Bytes IoProfile::totalBytes(Op op) const {
  sim::Bytes total = 0;
  for (const auto& r : records_)
    if (r.op == op) total += r.bytes;
  return total;
}

std::uint64_t IoProfile::opCount(Op op) const {
  std::uint64_t n = 0;
  for (const auto& r : records_)
    if (r.op == op) ++n;
  return n;
}

}  // namespace bgckpt::prof
