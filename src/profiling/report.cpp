#include "profiling/report.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <vector>

#include "simcore/units.hpp"

namespace bgckpt::prof {

namespace {

constexpr std::array<Op, 7> kAllOps = {Op::kCreate, Op::kOpen,  Op::kWrite,
                                       Op::kClose,  Op::kSend,  Op::kRecv,
                                       Op::kOther};

}  // namespace

std::string renderOpTable(const IoProfile& profile) {
  std::ostringstream out;
  out << "  op      |   count |        bytes |   busy time | mean latency\n";
  out << "  --------+---------+--------------+-------------+-------------\n";
  for (Op op : kAllOps) {
    std::uint64_t count = 0;
    sim::Bytes bytes = 0;
    double busy = 0;
    for (const auto& r : profile.records()) {
      if (r.op != op) continue;
      ++count;
      bytes += r.bytes;
      busy += r.duration();
    }
    if (count == 0) continue;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  %-7s | %7llu | %12s | %11s | %11s\n", opName(op),
                  static_cast<unsigned long long>(count),
                  sim::formatBytes(bytes).c_str(),
                  sim::formatDuration(busy).c_str(),
                  sim::formatDuration(busy / static_cast<double>(count))
                      .c_str());
    out << buf;
  }
  return out.str();
}

std::string renderSlowestRanks(const IoProfile& profile, int numRanks,
                               int count) {
  const auto envelope = profile.perRankEnvelope(numRanks);
  std::vector<int> order(static_cast<std::size_t>(numRanks));
  for (int r = 0; r < numRanks; ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return envelope[static_cast<std::size_t>(a)] >
           envelope[static_cast<std::size_t>(b)];
  });
  std::ostringstream out;
  out << "  slowest ranks (I/O envelope):\n";
  for (int i = 0; i < count && i < numRanks; ++i) {
    const int rank = order[static_cast<std::size_t>(i)];
    // Op mix for this rank.
    std::uint64_t writes = 0, metadata = 0, msgs = 0;
    for (const auto& rec : profile.records()) {
      if (rec.rank != rank) continue;
      if (rec.op == Op::kWrite) ++writes;
      if (rec.op == Op::kCreate || rec.op == Op::kOpen ||
          rec.op == Op::kClose)
        ++metadata;
      if (rec.op == Op::kSend || rec.op == Op::kRecv) ++msgs;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    rank %6d  %10s  (%llu writes, %llu metadata, "
                  "%llu msgs)\n",
                  rank,
                  sim::formatDuration(envelope[static_cast<std::size_t>(rank)])
                      .c_str(),
                  static_cast<unsigned long long>(writes),
                  static_cast<unsigned long long>(metadata),
                  static_cast<unsigned long long>(msgs));
    out << buf;
  }
  return out.str();
}

std::string renderReport(const IoProfile& profile, const ReportOptions& opt) {
  std::ostringstream out;
  out << "=== I/O profile: " << opt.jobName << " ===\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  records: %zu   ranks: %d\n",
                profile.records().size(), opt.numRanks);
  out << buf;

  double horizon = 0;
  for (const auto& r : profile.records()) horizon = std::max(horizon, r.end);
  const sim::Bytes written = profile.totalBytes(Op::kWrite);
  std::snprintf(buf, sizeof(buf),
                "  span: %s   data written: %s   avg write rate: %s\n",
                sim::formatDuration(horizon).c_str(),
                sim::formatBytes(written).c_str(),
                sim::formatBandwidth(horizon > 0
                                         ? static_cast<double>(written) /
                                               horizon
                                         : 0)
                    .c_str());
  out << buf;
  out << "\n" << renderOpTable(profile);
  if (opt.numRanks > 0)
    out << "\n"
        << renderSlowestRanks(profile, opt.numRanks, opt.slowestRanksShown);
  return out.str();
}

}  // namespace bgckpt::prof
