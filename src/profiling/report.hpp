// Darshan-style job summary report.
//
// The paper verifies its tuning "by examining I/O log data from both user
// profiling and system profiling" (Darshan). This renders an IoProfile
// into the comparable text summary: per-operation counts/bytes/time, the
// slowest ranks, and access-size statistics.
#pragma once

#include <string>

#include "profiling/profile.hpp"

namespace bgckpt::prof {

struct ReportOptions {
  int numRanks = 0;        ///< ranks in the job (for per-rank sections)
  int slowestRanksShown = 5;
  std::string jobName = "checkpoint";
};

/// Render the whole report.
std::string renderReport(const IoProfile& profile, const ReportOptions& opt);

/// One line per op kind: count, bytes, total busy time, mean size/latency.
std::string renderOpTable(const IoProfile& profile);

/// The N ranks with the largest I/O envelope, with their op mix.
std::string renderSlowestRanks(const IoProfile& profile, int numRanks,
                               int count);

}  // namespace bgckpt::prof
