// Darshan-style I/O profiling.
//
// Strategies record per-rank operation intervals here; the figure benches
// post-process them into the paper's plots: per-rank I/O-time scatters
// (Figs. 9-11) and write-activity timelines (Fig. 12).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/units.hpp"

namespace bgckpt::prof {

enum class Op : std::uint8_t {
  kCreate,
  kOpen,
  kWrite,
  kClose,
  kSend,   // worker -> writer handoff (rbIO)
  kRecv,   // writer side of the handoff
  kOther,
};

const char* opName(Op op);
/// Inverse of opName; nullopt for names that are not I/O ops (e.g. the
/// rbIO phase spans that share the obs kIo layer).
std::optional<Op> opFromName(std::string_view name);

struct OpRecord {
  int rank = -1;
  Op op = Op::kOther;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  sim::Bytes bytes = 0;

  sim::Duration duration() const { return end - start; }
};

class IoProfile {
 public:
  void record(int rank, Op op, sim::SimTime start, sim::SimTime end,
              sim::Bytes bytes = 0) {
    records_.push_back({rank, op, start, end, bytes});
  }
  void reserve(std::size_t n) { records_.reserve(n); }
  void clear() { records_.clear(); }

  const std::vector<OpRecord>& records() const { return records_; }

  /// Per-rank wall-clock I/O time: last end minus first start of that
  /// rank's records (the per-processor times of Figs. 9-11). Ranks with no
  /// records report 0.
  std::vector<double> perRankEnvelope(int numRanks) const;

  /// Per-rank sum of op durations (time actually blocked in I/O calls).
  std::vector<double> perRankBusy(int numRanks) const;

  /// Number of ranks with at least one record of `op` active in each time
  /// bin of width `binWidth` over [0, horizon) — the Fig. 12 timeline.
  /// Non-positive binWidth or horizon yields an empty timeline; records
  /// straddling the horizon count in every bin they overlap.
  std::vector<int> activityTimeline(Op op, double binWidth,
                                    double horizon) const;

  sim::Bytes totalBytes(Op op) const;
  std::uint64_t opCount(Op op) const;

 private:
  std::vector<OpRecord> records_;
};

/// RAII timer: records one op from construction to stop(), or — if stop()
/// is never reached (exception, early co_return) — at destruction, so the
/// record is never silently dropped. Construct with the scheduler to give
/// the destructor a clock; with a plain start time the fallback record is
/// zero-width (end == start).
class ScopedOp {
 public:
  ScopedOp(IoProfile& profile, int rank, Op op, sim::SimTime now)
      : profile_(profile), rank_(rank), op_(op), start_(now) {}
  ScopedOp(IoProfile& profile, int rank, Op op, const sim::Scheduler& sched)
      : profile_(profile),
        rank_(rank),
        op_(op),
        start_(sched.now()),
        sched_(&sched) {}
  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

  ~ScopedOp() {
    if (!stopped_)
      profile_.record(rank_, op_, start_,
                      sched_ ? sched_->now() : start_);
  }

  void stop(sim::SimTime now, sim::Bytes bytes = 0) {
    if (stopped_) return;
    stopped_ = true;
    profile_.record(rank_, op_, start_, now, bytes);
  }

 private:
  IoProfile& profile_;
  int rank_;
  Op op_;
  sim::SimTime start_;
  const sim::Scheduler* sched_ = nullptr;
  bool stopped_ = false;
};

/// Trace sink that replays the kIo event stream into an IoProfile, so the
/// legacy profile API (per-rank scatters, Fig. 12 timelines, the Darshan
/// report) is a consumer of the same events every other sink sees rather
/// than a parallel bookkeeping path.
class IoProfileSink final : public obs::TraceSink {
 public:
  explicit IoProfileSink(IoProfile& profile) : profile_(profile) {}

  void event(const obs::TraceEvent& ev) override {
    if (ev.phase != 'X') return;  // phase spans (B/E) are not op records
    const auto op = opFromName(ev.name);
    if (!op) return;
    profile_.record(ev.tid, *op, ev.ts, ev.ts + ev.dur, ev.bytes);
  }

  unsigned layerMask() const override {
    return obs::layerBit(obs::Layer::kIo);
  }

 private:
  IoProfile& profile_;
};

}  // namespace bgckpt::prof
