// Darshan-style I/O profiling.
//
// Strategies record per-rank operation intervals here; the figure benches
// post-process them into the paper's plots: per-rank I/O-time scatters
// (Figs. 9-11) and write-activity timelines (Fig. 12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace bgckpt::prof {

enum class Op : std::uint8_t {
  kCreate,
  kOpen,
  kWrite,
  kClose,
  kSend,   // worker -> writer handoff (rbIO)
  kRecv,   // writer side of the handoff
  kOther,
};

const char* opName(Op op);

struct OpRecord {
  int rank = -1;
  Op op = Op::kOther;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  sim::Bytes bytes = 0;

  sim::Duration duration() const { return end - start; }
};

class IoProfile {
 public:
  void record(int rank, Op op, sim::SimTime start, sim::SimTime end,
              sim::Bytes bytes = 0) {
    records_.push_back({rank, op, start, end, bytes});
  }
  void reserve(std::size_t n) { records_.reserve(n); }
  void clear() { records_.clear(); }

  const std::vector<OpRecord>& records() const { return records_; }

  /// Per-rank wall-clock I/O time: last end minus first start of that
  /// rank's records (the per-processor times of Figs. 9-11). Ranks with no
  /// records report 0.
  std::vector<double> perRankEnvelope(int numRanks) const;

  /// Per-rank sum of op durations (time actually blocked in I/O calls).
  std::vector<double> perRankBusy(int numRanks) const;

  /// Number of ranks with at least one record of `op` active in each time
  /// bin of width `binWidth` over [0, horizon) — the Fig. 12 timeline.
  std::vector<int> activityTimeline(Op op, double binWidth,
                                    double horizon) const;

  sim::Bytes totalBytes(Op op) const;
  std::uint64_t opCount(Op op) const;

 private:
  std::vector<OpRecord> records_;
};

/// Convenience RAII timer: records one op from construction to stop().
class ScopedOp {
 public:
  ScopedOp(IoProfile& profile, int rank, Op op, sim::SimTime now)
      : profile_(profile), rank_(rank), op_(op), start_(now) {}

  void stop(sim::SimTime now, sim::Bytes bytes = 0) {
    profile_.record(rank_, op_, start_, now, bytes);
  }

 private:
  IoProfile& profile_;
  int rank_;
  Op op_;
  sim::SimTime start_;
};

}  // namespace bgckpt::prof
