#include "mpisim/comm.hpp"

#include "simcore/simcheck.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>

namespace bgckpt::mpi {

namespace detail {

struct Group {
  sim::Scheduler& sched;
  const machine::Machine& mach;
  net::TorusNetwork& torus;
  net::CollectiveNetwork& coll;
  obs::Observability* obs = nullptr;  // shared across subgroups
  std::shared_ptr<sim::RngStream> jitter;  // shared across subgroups
  std::vector<int> globalRanks;
  sim::Barrier barrier;  // direct member: Group itself lives behind shared_ptr

  struct Waiter {
    int src = kAnySource;
    int tag = 0;
    std::coroutine_handle<> handle;
    Message msg;
  };
  struct Box {
    std::deque<Message> queue;    // unmatched arrivals, in order
    std::deque<Waiter*> waiters;  // suspended receivers, in order
  };
  std::vector<Box> boxes;

  // Collective scratch state. MPI requires every rank to enter collectives
  // in the same order, so one set of slots per group suffices; the last
  // arrival finalises results before the barrier releases anyone.
  int collArrived = 0;
  double reduceSumAccum = 0.0;
  double reduceMaxAccum = -std::numeric_limits<double>::infinity();
  double reduceSumResult = 0.0;
  double reduceMaxResult = 0.0;
  std::vector<std::uint64_t> gatherAccum;
  std::vector<std::uint64_t> gatherResult;
  std::shared_ptr<const std::vector<std::uint64_t>> gatherShared;
  Message bcastSlot;
  std::vector<std::tuple<int, int, int>> splitEntries;  // (color, key, rank)
  std::map<int, std::shared_ptr<Group>> splitGroups;
  std::vector<int> splitLocalRank;

  Group(sim::Scheduler& s, const machine::Machine& m, net::TorusNetwork& t,
        net::CollectiveNetwork& c, obs::Observability* o,
        std::shared_ptr<sim::RngStream> j, std::vector<int> ranks)
      : sched(s),
        mach(m),
        torus(t),
        coll(c),
        obs(o),
        jitter(std::move(j)),
        globalRanks(std::move(ranks)),
        barrier(s, globalRanks.size()),
        boxes(globalRanks.size()),
        gatherAccum(globalRanks.size(), 0),
        splitLocalRank(globalRanks.size(), -1) {}

  int size() const { return static_cast<int>(globalRanks.size()); }

  static bool matches(const Message& msg, int wantSrc, int wantTag) {
    return (wantSrc == kAnySource || msg.source == wantSrc) &&
           msg.tag == wantTag;
  }

  void deliver(int dst, Message msg) {
    Box& box = boxes[static_cast<std::size_t>(dst)];
    for (auto it = box.waiters.begin(); it != box.waiters.end(); ++it) {
      if (matches(msg, (*it)->src, (*it)->tag)) {
        Waiter* w = *it;
        box.waiters.erase(it);
        w->msg = std::move(msg);
        sched.scheduleResume(
            0.0, w->handle,
            sim::WakeEdge{sim::WakeKind::kMessageDeliver, "mpi-deliver"});
        return;
      }
    }
    box.queue.push_back(std::move(msg));
  }

  /// Called by the last rank entering a collective, before the barrier
  /// releases: snapshot accumulators into result slots and reset.
  void finalizeCollective() {
    reduceSumResult = reduceSumAccum;
    reduceMaxResult = reduceMaxAccum;
    gatherResult = gatherAccum;
    gatherShared = std::make_shared<const std::vector<std::uint64_t>>(
        gatherAccum);
    reduceSumAccum = 0.0;
    reduceMaxAccum = -std::numeric_limits<double>::infinity();
    std::fill(gatherAccum.begin(), gatherAccum.end(), 0);
    collArrived = 0;
    if (!splitEntries.empty()) finalizeSplit();
  }

  void finalizeSplit() {
    std::sort(splitEntries.begin(), splitEntries.end());  // color, key, rank
    splitGroups.clear();
    std::map<int, std::vector<int>> members;  // color -> old local ranks
    for (const auto& [color, key, rank] : splitEntries)
      members[color].push_back(rank);
    for (auto& [color, ranks] : members) {
      std::vector<int> globals;
      globals.reserve(ranks.size());
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        splitLocalRank[static_cast<std::size_t>(ranks[i])] =
            static_cast<int>(i);
        globals.push_back(globalRanks[static_cast<std::size_t>(ranks[i])]);
      }
      splitGroups.emplace(color,
                          std::make_shared<Group>(sched, mach, torus, coll,
                                                  obs, jitter,
                                                  std::move(globals)));
    }
    splitEntries.clear();
  }
};

namespace {

sim::Task<> transferAndDeliver(std::shared_ptr<Group> g, int src, int dst,
                               Message msg,
                               std::shared_ptr<sim::Gate> gate) {
  const int srcGlobal = g->globalRanks[static_cast<std::size_t>(src)];
  const int dstGlobal = g->globalRanks[static_cast<std::size_t>(dst)];
  const sim::SimTime sendTime = g->sched.now();
  co_await g->torus.transfer(srcGlobal, dstGlobal, msg.size, msg.trace);
  if (g->obs)
    g->obs->message(srcGlobal, dstGlobal, msg.size, sendTime,
                    g->sched.now());
  g->deliver(dst, std::move(msg));
  gate->fire();
}

// One kMpi wait span per rank per collective, covering arrival through the
// barrier release and the analytic cost delay. Blocked-time attribution
// (obs/attr.hpp) classifies these as barrier wait, so the span must cover
// the full interval a rank is held inside the collective — notably the wait
// for stragglers, which is the paper's "blocked processor" component.
void emitCollSpan(detail::Group& g, int localRank, const char* name,
                  sim::SimTime t0) {
  if (g.obs)
    g.obs->complete(obs::Layer::kMpi,
                    g.globalRanks[static_cast<std::size_t>(localRank)], name,
                    t0, g.sched.now());
}

struct RecvAwaiter {
  Group& g;
  int me;
  Group::Waiter waiter;

  bool await_ready() {
    auto& box = g.boxes[static_cast<std::size_t>(me)];
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (Group::matches(*it, waiter.src, waiter.tag)) {
        waiter.msg = std::move(*it);
        box.queue.erase(it);
        return true;
      }
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    waiter.handle = h;
    g.boxes[static_cast<std::size_t>(me)].waiters.push_back(&waiter);
  }
  Message await_resume() { return std::move(waiter.msg); }
};

}  // namespace

}  // namespace detail

using detail::Group;

int Comm::size() const { return group_->size(); }

int Comm::globalRank(int localRank) const {
  return group_->globalRanks.at(static_cast<std::size_t>(localRank));
}

const machine::Machine& Comm::machine() const { return group_->mach; }

sim::Scheduler& Comm::scheduler() const { return group_->sched; }

sim::Task<Request> Comm::isend(int dst, int tag, Message msg) {
  auto& g = *group_;
  SIM_CHECK(dst >= 0 && dst < g.size(), "isend destination rank out of bounds");
  msg.tag = tag;
  msg.source = rank_;
  // The call itself: MPI software overhead plus a heavy-tailed jitter
  // (interrupts, allocation, retransmit slots). This is what a worker
  // "perceives" when shipping its checkpoint block to a writer.
  const sim::SimTime callStart = g.sched.now();
  co_await g.sched.delay(g.mach.compute().mpiOverhead +
                         g.jitter->lognormal(7e-6, 0.8));
  msg.trace.hop(obs::Hop::kHandoffSend, callStart, g.sched.now(), msg.size);
  auto gate = std::make_shared<sim::Gate>(g.sched);
  g.sched.spawn(
      detail::transferAndDeliver(group_, rank_, dst, std::move(msg), gate));
  co_return Request(gate);
}

sim::Task<> Comm::send(int dst, int tag, Message msg) {
  Request req = co_await isend(dst, tag, std::move(msg));
  co_await wait(req);
}

sim::Task<Message> Comm::recv(int src, int tag) {
  detail::RecvAwaiter awaiter{*group_, rank_, {src, tag, {}, {}}};
  Message msg = co_await awaiter;
  co_return msg;
}

sim::Task<> Comm::wait(Request req) {
  if (!req.valid()) co_return;
  co_await req.gate_->wait();
}

sim::Task<> Comm::waitAll(const std::vector<Request>& reqs) {
  for (const auto& r : reqs) co_await wait(r);
}

sim::Task<> Comm::barrier() {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  co_await g.sched.delay(g.coll.barrierCost(g.size()));
  detail::emitCollSpan(g, rank_, "barrier", t0);
}

sim::Task<Message> Comm::bcast(int root, Message msg) {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  if (rank_ == root) g.bcastSlot = msg;
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  Message result = g.bcastSlot;
  co_await g.sched.delay(
      g.coll.broadcastCost(g.size(), result.size));
  detail::emitCollSpan(g, rank_, "collective", t0);
  co_return result;
}

sim::Task<double> Comm::allReduceSum(double value) {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  g.reduceSumAccum += value;
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  const double result = g.reduceSumResult;
  co_await g.sched.delay(g.coll.reduceCost(g.size(), sizeof(double)) +
                         g.coll.broadcastCost(g.size(), sizeof(double)));
  detail::emitCollSpan(g, rank_, "collective", t0);
  co_return result;
}

sim::Task<double> Comm::allReduceMax(double value) {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  g.reduceMaxAccum = std::max(g.reduceMaxAccum, value);
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  const double result = g.reduceMaxResult;
  co_await g.sched.delay(g.coll.reduceCost(g.size(), sizeof(double)) +
                         g.coll.broadcastCost(g.size(), sizeof(double)));
  detail::emitCollSpan(g, rank_, "collective", t0);
  co_return result;
}

sim::Task<std::vector<std::uint64_t>> Comm::allGatherU64(std::uint64_t value) {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  g.gatherAccum[static_cast<std::size_t>(rank_)] = value;
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  std::vector<std::uint64_t> result = g.gatherResult;
  co_await g.sched.delay(
      g.coll.reduceCost(g.size(), sizeof(std::uint64_t)) +
      g.coll.broadcastCost(
          g.size(), sizeof(std::uint64_t) * g.gatherResult.size()));
  detail::emitCollSpan(g, rank_, "collective", t0);
  co_return result;
}

sim::Task<std::shared_ptr<const std::vector<std::uint64_t>>>
Comm::allGatherU64Shared(std::uint64_t value) {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  g.gatherAccum[static_cast<std::size_t>(rank_)] = value;
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  auto result = g.gatherShared;
  co_await g.sched.delay(
      g.coll.reduceCost(g.size(), sizeof(std::uint64_t)) +
      g.coll.broadcastCost(g.size(),
                           sizeof(std::uint64_t) * g.gatherAccum.size()));
  detail::emitCollSpan(g, rank_, "collective", t0);
  co_return result;
}

sim::Task<Comm> Comm::split(int color, int key) {
  auto& g = *group_;
  const sim::SimTime t0 = g.sched.now();
  g.splitEntries.emplace_back(color, key, rank_);
  if (++g.collArrived == g.size()) g.finalizeCollective();
  co_await g.barrier.arriveAndWait();
  auto sub = g.splitGroups.at(color);
  const int newRank = g.splitLocalRank[static_cast<std::size_t>(rank_)];
  co_await g.sched.delay(g.coll.barrierCost(g.size()));
  detail::emitCollSpan(g, rank_, "collective", t0);
  co_return Comm(std::move(sub), newRank);
}

Runtime::Runtime(sim::Scheduler& sched, const machine::Machine& mach,
                 net::TorusNetwork& torus, net::CollectiveNetwork& coll,
                 std::uint64_t seed, obs::Observability* obs) {
  std::vector<int> ranks(static_cast<std::size_t>(mach.numRanks()));
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ranks[i] = static_cast<int>(i);
  world_ = std::make_shared<Group>(
      sched, mach, torus, coll, obs,
      std::make_shared<sim::RngStream>(seed, "mpi-isend"), std::move(ranks));
}

Runtime::~Runtime() = default;

void Runtime::spawnAll(std::function<sim::Task<>(Comm)> program) {
  // Pin the callable: rank coroutine frames reference its captures.
  programs_.push_back(std::make_shared<std::function<sim::Task<>(Comm)>>(
      std::move(program)));
  auto& fn = *programs_.back();
  for (int r = 0; r < world_->size(); ++r)
    world_->sched.spawn(fn(Comm(world_, r)));
}

Comm Runtime::world(int rank) const { return Comm(world_, rank); }

int Runtime::numRanks() const { return world_->size(); }

}  // namespace bgckpt::mpi
