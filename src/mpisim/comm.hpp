// Simulated MPI: communicators, point-to-point, and collectives.
//
// Each MPI rank is a coroutine. Point-to-point messages travel over the
// simulated torus (netsim) and are matched (source, tag) in arrival order at
// the destination's mailbox, like a real MPI progress engine. Collectives
// use the dedicated collective/barrier networks' analytic cost model, since
// on Blue Gene they run on separate hardware and are effectively
// contention-free for this workload.
//
// Nonblocking-send semantics follow the paper's measurement model: the
// `isend` *call* costs only software overhead (a few microseconds with a
// heavy-tailed jitter — this is exactly the "perceived write" time of
// Table I); the returned Request completes at delivery.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "machine/bgp.hpp"
#include "netsim/torus.hpp"
#include "obs/obs.hpp"
#include "obs/optrace.hpp"
#include "simcore/channel.hpp"
#include "simcore/random.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

namespace bgckpt::mpi {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;

struct Message {
  sim::Bytes size = 0;
  /// Optional real content (small-scale correctness runs only).
  std::shared_ptr<const std::vector<std::byte>> payload;
  int tag = 0;
  int source = -1;  // filled in on delivery (local rank in the comm)
  /// Caller-defined metadata rider (mpiio uses it for file offsets).
  std::uint64_t meta = 0;
  /// Shared-state rider for in-simulation handle exchange (e.g. a
  /// collective open broadcasting its shared file object). Carries no
  /// simulated bytes; `size` governs timing.
  std::shared_ptr<void> box;
  /// Per-request span context riding the message by value: the sender's
  /// checkpoint block keeps its identity across the torus so the receiver
  /// (rbIO writer, mpiio aggregator) can link it into the aggregate write
  /// it lands in. Null (the default) when tracing is off.
  obs::OpTraceContext trace;

  /// Convenience: a payload-less message of `n` simulated bytes.
  static Message ofSize(sim::Bytes n) {
    Message m;
    m.size = n;
    return m;
  }
};

/// Handle for a nonblocking operation; completes at delivery.
class Request {
 public:
  Request() = default;
  bool valid() const { return static_cast<bool>(gate_); }
  bool done() const { return gate_ && gate_->fired(); }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<sim::Gate> gate) : gate_(std::move(gate)) {}
  std::shared_ptr<sim::Gate> gate_;
};

namespace detail {
struct Group;  // shared communicator state, defined in comm.cpp
}

/// A rank's view of a communicator (cheap to copy).
class Comm {
 public:
  Comm() = default;

  int rank() const { return rank_; }
  int size() const;
  int globalRank(int localRank) const;
  const machine::Machine& machine() const;
  sim::Scheduler& scheduler() const;

  /// Blocking send: completes when the message has been delivered.
  sim::Task<> send(int dst, int tag, Message msg);

  /// Nonblocking send: costs only the software call overhead.
  sim::Task<Request> isend(int dst, int tag, Message msg);

  /// Blocking receive; src may be kAnySource.
  sim::Task<Message> recv(int src, int tag);

  sim::Task<> wait(Request req);
  sim::Task<> waitAll(const std::vector<Request>& reqs);

  sim::Task<> barrier();
  /// Root's message is returned on every rank.
  sim::Task<Message> bcast(int root, Message msg);
  sim::Task<double> allReduceSum(double value);
  sim::Task<double> allReduceMax(double value);
  sim::Task<std::vector<std::uint64_t>> allGatherU64(std::uint64_t value);

  /// Like allGatherU64, but every rank receives the same shared snapshot —
  /// O(size) total memory instead of O(size^2). Essential at 64K ranks.
  sim::Task<std::shared_ptr<const std::vector<std::uint64_t>>>
  allGatherU64Shared(std::uint64_t value);

  /// Collective split into disjoint sub-communicators by color; ranks are
  /// ordered by (key, old rank) within each color.
  sim::Task<Comm> split(int color, int key);

 private:
  friend class Runtime;
  Comm(std::shared_ptr<detail::Group> group, int rank)
      : group_(std::move(group)), rank_(rank) {}

  std::shared_ptr<detail::Group> group_;
  int rank_ = -1;
};

/// Owns the simulated job: one coroutine per rank running `program`.
class Runtime {
 public:
  Runtime(sim::Scheduler& sched, const machine::Machine& mach,
          net::TorusNetwork& torus, net::CollectiveNetwork& coll,
          std::uint64_t seed, obs::Observability* obs = nullptr);
  ~Runtime();

  /// Spawn `program(comm)` on every rank of the world communicator. Call
  /// Scheduler::run() afterwards to execute the job. The callable (and any
  /// captures) is kept alive by the Runtime, which must outlive the run —
  /// rank coroutine frames refer into it.
  void spawnAll(std::function<sim::Task<>(Comm)> program);

  /// World view for rank-independent helpers (e.g. tests driving one rank).
  Comm world(int rank) const;

  int numRanks() const;

 private:
  std::shared_ptr<detail::Group> world_;
  std::vector<std::shared_ptr<std::function<sim::Task<>(Comm)>>> programs_;
};

}  // namespace bgckpt::mpi
