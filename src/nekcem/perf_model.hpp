// At-scale NekCEM compute-time model.
//
// The figure benches need the paper's compute-time denominator (Fig. 7's
// T(computation) and Eq. 1's Tcomp) at 16K-64K ranks, where the mini solver
// cannot run directly. This model is calibrated to Section III-A:
//   * CPU time per step ~ 0.13 s on 131,072 ranks for E=273K, N=15
//     (n = 1.1 billion grid points, n/P = 8530);
//   * 75% strong-scaling efficiency at 131K ranks for n/P = 8530 against a
//     16K-rank base with n/P = 68250.
// The model is t_step(n/P) = alpha(N) * (n/P + kappa): a linear work term
// plus a communication/latency floor kappa, with alpha scaling like the
// tensor-operator cost (N+1).
#pragma once

#include <cstdint>

namespace bgckpt::nekcem {

class PerfModel {
 public:
  /// Grid points for E elements at order N.
  static std::uint64_t gridPoints(std::uint64_t elements, int order) {
    const auto np1 = static_cast<std::uint64_t>(order + 1);
    return elements * np1 * np1 * np1;
  }

  /// Seconds per time step with `pointsPerRank` grid points per rank at
  /// polynomial order N.
  double stepSeconds(double pointsPerRank, int order = 15) const;

  /// Seconds per step for a (E, N, P) configuration.
  double stepSeconds(std::uint64_t elements, int order, int ranks) const {
    return stepSeconds(static_cast<double>(gridPoints(elements, order)) /
                           static_cast<double>(ranks),
                       order);
  }

  /// Parallel efficiency of configuration (pointsA, ranksA) against a base
  /// (pointsB, ranksB): ratio of ideal to actual speedup.
  double efficiency(double pointsPerRankA, int ranksA, double pointsPerRankB,
                    int ranksB, int order = 15) const;

  /// The paper's weak-scaling checkpoint runs: (E, P) = (68K, 16K),
  /// (137K, 32K), (273K, 65K) at N=15 => n/P ~= 17000, step ~0.22 s.
  double weakScalingStepSeconds() const { return stepSeconds(17000.0, 15); }

  // Calibrated constants (see header comment).
  double alphaN15 = 1.0885e-5;  // seconds per grid point per step at N=15
  double kappa = 3414.0;        // communication floor, in grid points
};

}  // namespace bgckpt::nekcem
