// Gauss-Lobatto-Legendre quadrature and spectral differentiation.
//
// The SEDG discretisation rests on tensor products of 1-D Lagrange
// interpolants through the GLL points: the GLL quadrature makes the mass
// matrix diagonal (no inversion cost — Section III-A of the paper), and the
// stiffness matrix is a tensor product of the 1-D differentiation matrix.
#pragma once

#include <vector>

namespace bgckpt::nekcem {

/// Nodes, weights and differentiation matrix for polynomial order N
/// (N+1 points) on the reference interval [-1, 1].
class GllBasis {
 public:
  explicit GllBasis(int order);

  int order() const { return order_; }
  int numPoints() const { return order_ + 1; }

  /// GLL nodes in ascending order; endpoints are exactly -1 and 1.
  const std::vector<double>& nodes() const { return nodes_; }

  /// Quadrature weights (exact for polynomials of degree <= 2N-1).
  const std::vector<double>& weights() const { return weights_; }

  /// Dense (N+1)x(N+1) differentiation matrix, row-major:
  /// (Du)_i = sum_j D[i*(N+1)+j] u_j differentiates exactly through
  /// degree N.
  const std::vector<double>& diffMatrix() const { return diff_; }

  double node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  double weight(int i) const { return weights_[static_cast<std::size_t>(i)]; }
  double diff(int i, int j) const {
    return diff_[static_cast<std::size_t>(i * numPoints() + j)];
  }

 private:
  int order_;
  std::vector<double> nodes_;
  std::vector<double> weights_;
  std::vector<double> diff_;
};

/// Legendre polynomial P_n(x) (used by tests and the basis construction).
double legendre(int n, double x);

/// First derivative of P_n at x.
double legendreDeriv(int n, double x);

}  // namespace bgckpt::nekcem
