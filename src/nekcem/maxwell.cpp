#include "nekcem/maxwell.hpp"

#include "simcore/simcheck.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>

namespace bgckpt::nekcem {

namespace {

// Carpenter & Kennedy (1994) five-stage fourth-order low-storage RK.
constexpr std::array<double, 5> kRkA = {
    0.0, -567301805773.0 / 1357537059087.0, -2404267990393.0 / 2016746695238.0,
    -3550918686646.0 / 2091501179385.0, -1275806237668.0 / 842570457699.0};
constexpr std::array<double, 5> kRkB = {
    1432997174477.0 / 9575080441755.0, 5161836677717.0 / 13612068292357.0,
    1720146321549.0 / 2090206949498.0, 3134564353537.0 / 4481467310338.0,
    2277821191437.0 / 14882151754819.0};

}  // namespace

void FieldSet::scaleAddScaled(double a, const FieldSet& other, double b) {
  for (int f = 0; f < kNumFieldComponents; ++f) {
    auto& mine = comp[static_cast<std::size_t>(f)];
    const auto& theirs = other.comp[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = a * mine[i] + b * theirs[i];
  }
}

MaxwellSolver::MaxwellSolver(BoxMesh mesh, int order)
    : mesh_(mesh), basis_(order) {
  const auto np = static_cast<std::size_t>(basis_.numPoints());
  npe_ = np * np * np;
  dof_ = npe_ * static_cast<std::size_t>(mesh_.numElements());
  q_.resize(dof_);
  rhs_.resize(dof_);
  res_.resize(dof_);
}

std::array<double, 3> MaxwellSolver::nodeCoord(int e, int i, int j,
                                               int k) const {
  const auto origin = mesh_.elementOrigin(e);
  auto map = [this](double lo, double h, int n) {
    return lo + 0.5 * h * (basis_.node(n) + 1.0);
  };
  return {map(origin[0], mesh_.hx(), i), map(origin[1], mesh_.hy(), j),
          map(origin[2], mesh_.hz(), k)};
}

void MaxwellSolver::setSolution(const AnalyticField& fn, double t) {
  const int np = basis_.numPoints();
  std::array<double, 6> v{};
  for (int e = 0; e < mesh_.numElements(); ++e) {
    for (int k = 0; k < np; ++k)
      for (int j = 0; j < np; ++j)
        for (int i = 0; i < np; ++i) {
          const auto xyz = nodeCoord(e, i, j, k);
          fn(xyz[0], xyz[1], xyz[2], t, v);
          const std::size_t idx =
              static_cast<std::size_t>(e) * npe_ +
              static_cast<std::size_t>(i + np * (j + np * k));
          for (int f = 0; f < 6; ++f)
            q_.comp[static_cast<std::size_t>(f)][idx] =
                v[static_cast<std::size_t>(f)];
        }
  }
  time_ = t;
}

void MaxwellSolver::addVolumeTerms(const FieldSet& q, FieldSet& out) const {
  const int np = basis_.numPoints();
  const double rx = 2.0 / mesh_.hx();
  const double ry = 2.0 / mesh_.hy();
  const double rz = 2.0 / mesh_.hz();
  const auto& D = basis_.diffMatrix();

  // Per-element scratch for the six first derivatives we need.
  std::vector<double> du(static_cast<std::size_t>(np));

  auto deriv = [&](const std::vector<double>& u, std::size_t base, int dim,
                   int i, int j, int k) {
    // d/dxi via the 1-D differentiation matrix along `dim`.
    double acc = 0.0;
    const int n = dim == 0 ? i : (dim == 1 ? j : k);
    for (int m = 0; m < np; ++m) {
      const int ii = dim == 0 ? m : i;
      const int jj = dim == 1 ? m : j;
      const int kk = dim == 2 ? m : k;
      acc += D[static_cast<std::size_t>(n * np + m)] *
             u[base + static_cast<std::size_t>(ii + np * (jj + np * kk))];
    }
    return acc;
  };

  for (int e = 0; e < mesh_.numElements(); ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * npe_;
    for (int k = 0; k < np; ++k)
      for (int j = 0; j < np; ++j)
        for (int i = 0; i < np; ++i) {
          const std::size_t idx =
              base + static_cast<std::size_t>(i + np * (j + np * k));
          const auto& Ex = q.comp[kEx];
          const auto& Ey = q.comp[kEy];
          const auto& Ez = q.comp[kEz];
          const auto& Hx = q.comp[kHx];
          const auto& Hy = q.comp[kHy];
          const auto& Hz = q.comp[kHz];
          // curl H = (dHz/dy - dHy/dz, dHx/dz - dHz/dx, dHy/dx - dHx/dy)
          const double dHz_dy = ry * deriv(Hz, base, 1, i, j, k);
          const double dHy_dz = rz * deriv(Hy, base, 2, i, j, k);
          const double dHx_dz = rz * deriv(Hx, base, 2, i, j, k);
          const double dHz_dx = rx * deriv(Hz, base, 0, i, j, k);
          const double dHy_dx = rx * deriv(Hy, base, 0, i, j, k);
          const double dHx_dy = ry * deriv(Hx, base, 1, i, j, k);
          const double dEz_dy = ry * deriv(Ez, base, 1, i, j, k);
          const double dEy_dz = rz * deriv(Ey, base, 2, i, j, k);
          const double dEx_dz = rz * deriv(Ex, base, 2, i, j, k);
          const double dEz_dx = rx * deriv(Ez, base, 0, i, j, k);
          const double dEy_dx = rx * deriv(Ey, base, 0, i, j, k);
          const double dEx_dy = ry * deriv(Ex, base, 1, i, j, k);

          out.comp[kEx][idx] += dHz_dy - dHy_dz;
          out.comp[kEy][idx] += dHx_dz - dHz_dx;
          out.comp[kEz][idx] += dHy_dx - dHx_dy;
          out.comp[kHx][idx] += -(dEz_dy - dEy_dz);
          out.comp[kHy][idx] += -(dEx_dz - dEz_dx);
          out.comp[kHz][idx] += -(dEy_dx - dEx_dy);
        }
  }
}

void MaxwellSolver::addSurfaceTerms(const FieldSet& q, FieldSet& out) const {
  const int np = basis_.numPoints();
  const double w0 = basis_.weight(0);
  // Face normal per face id and lift scale 2/(h_normal * w0).
  const std::array<std::array<double, 3>, kNumFaces> normals = {
      {{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}};
  const std::array<double, kNumFaces> lift = {
      2.0 / (mesh_.hx() * w0), 2.0 / (mesh_.hx() * w0),
      2.0 / (mesh_.hy() * w0), 2.0 / (mesh_.hy() * w0),
      2.0 / (mesh_.hz() * w0), 2.0 / (mesh_.hz() * w0)};

  auto nodeOnFace = [np](int face, int a, int b) -> std::array<int, 3> {
    // (a, b) parameterise the face; return (i, j, k).
    switch (face) {
      case 0: return {0, a, b};
      case 1: return {np - 1, a, b};
      case 2: return {a, 0, b};
      case 3: return {a, np - 1, b};
      case 4: return {a, b, 0};
      default: return {a, b, np - 1};
    }
  };

  for (int e = 0; e < mesh_.numElements(); ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * npe_;
    for (int face = 0; face < kNumFaces; ++face) {
      const int nb = mesh_.neighbor(e, face);
      const int opposite = face ^ 1;
      const auto& n = normals[static_cast<std::size_t>(face)];
      const std::size_t nbBase =
          nb >= 0 ? static_cast<std::size_t>(nb) * npe_ : 0;
      for (int b = 0; b < np; ++b)
        for (int a = 0; a < np; ++a) {
          const auto [i, j, k] = nodeOnFace(face, a, b);
          const std::size_t idx =
              base + static_cast<std::size_t>(i + np * (j + np * k));
          std::array<double, 6> mine{}, theirs{};
          for (int f = 0; f < 6; ++f)
            mine[static_cast<std::size_t>(f)] =
                q.comp[static_cast<std::size_t>(f)][idx];
          if (nb >= 0) {
            const auto [oi, oj, ok] = nodeOnFace(opposite, a, b);
            const std::size_t nidx =
                nbBase + static_cast<std::size_t>(oi + np * (oj + np * ok));
            for (int f = 0; f < 6; ++f)
              theirs[static_cast<std::size_t>(f)] =
                  q.comp[static_cast<std::size_t>(f)][nidx];
          } else {
            // PEC wall: tangential E flips (model as E+ = -E-), H+ = H-.
            for (int f = 0; f < 3; ++f)
              theirs[static_cast<std::size_t>(f)] =
                  -mine[static_cast<std::size_t>(f)];
            for (int f = 3; f < 6; ++f)
              theirs[static_cast<std::size_t>(f)] =
                  mine[static_cast<std::size_t>(f)];
          }
          // Jumps (interior minus exterior) and upwind fluxes (H&W).
          const double dEx = mine[0] - theirs[0];
          const double dEy = mine[1] - theirs[1];
          const double dEz = mine[2] - theirs[2];
          const double dHx = mine[3] - theirs[3];
          const double dHy = mine[4] - theirs[4];
          const double dHz = mine[5] - theirs[5];
          const double ndotdE = n[0] * dEx + n[1] * dEy + n[2] * dEz;
          const double ndotdH = n[0] * dHx + n[1] * dHy + n[2] * dHz;
          constexpr double alpha = 1.0;  // upwinding
          const double fluxEx =
              n[1] * dHz - n[2] * dHy + alpha * (dEx - ndotdE * n[0]);
          const double fluxEy =
              n[2] * dHx - n[0] * dHz + alpha * (dEy - ndotdE * n[1]);
          const double fluxEz =
              n[0] * dHy - n[1] * dHx + alpha * (dEz - ndotdE * n[2]);
          const double fluxHx =
              -n[1] * dEz + n[2] * dEy + alpha * (dHx - ndotdH * n[0]);
          const double fluxHy =
              -n[2] * dEx + n[0] * dEz + alpha * (dHy - ndotdH * n[1]);
          const double fluxHz =
              -n[0] * dEy + n[1] * dEx + alpha * (dHz - ndotdH * n[2]);
          const double scale = -0.5 * lift[static_cast<std::size_t>(face)];
          out.comp[kEx][idx] += scale * fluxEx;
          out.comp[kEy][idx] += scale * fluxEy;
          out.comp[kEz][idx] += scale * fluxEz;
          out.comp[kHx][idx] += scale * fluxHx;
          out.comp[kHy][idx] += scale * fluxHy;
          out.comp[kHz][idx] += scale * fluxHz;
        }
    }
  }
}

void MaxwellSolver::evalRhs(const FieldSet& q, FieldSet& out) const {
  for (auto& c : out.comp) std::fill(c.begin(), c.end(), 0.0);
  addVolumeTerms(q, out);
  addSurfaceTerms(q, out);
}

void MaxwellSolver::step(double dt) {
  for (int s = 0; s < 5; ++s) {
    evalRhs(q_, rhs_);
    res_.scaleAddScaled(kRkA[static_cast<std::size_t>(s)], rhs_, dt);
    q_.scaleAddScaled(1.0, res_, kRkB[static_cast<std::size_t>(s)]);
  }
  time_ += dt;
  ++steps_;
}

void MaxwellSolver::stepClassicalRk4(double dt) {
  // q_{n+1} = q_n + dt/6 (k1 + 2 k2 + 2 k3 + k4). Full-storage reference.
  FieldSet q0 = q_;
  FieldSet accum = q_;  // will become q_{n+1}; start from q_n

  evalRhs(q0, rhs_);  // k1
  accum.scaleAddScaled(1.0, rhs_, dt / 6.0);
  q_ = q0;
  q_.scaleAddScaled(1.0, rhs_, dt / 2.0);

  evalRhs(q_, rhs_);  // k2
  accum.scaleAddScaled(1.0, rhs_, dt / 3.0);
  q_ = q0;
  q_.scaleAddScaled(1.0, rhs_, dt / 2.0);

  evalRhs(q_, rhs_);  // k3
  accum.scaleAddScaled(1.0, rhs_, dt / 3.0);
  q_ = q0;
  q_.scaleAddScaled(1.0, rhs_, dt);

  evalRhs(q_, rhs_);  // k4
  accum.scaleAddScaled(1.0, rhs_, dt / 6.0);

  q_ = std::move(accum);
  time_ += dt;
  ++steps_;
}

double MaxwellSolver::stableDt() const {
  const double hmin = std::min({mesh_.hx(), mesh_.hy(), mesh_.hz()});
  const int n = basis_.order();
  // CFL for nodal DG: dt ~ C * h / N^2 with unit wave speed; conservative C.
  return 0.3 * hmin / (n * n);
}

double MaxwellSolver::energy() const {
  const int np = basis_.numPoints();
  const double jac = mesh_.hx() * mesh_.hy() * mesh_.hz() / 8.0;
  double total = 0.0;
  for (int e = 0; e < mesh_.numElements(); ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * npe_;
    for (int k = 0; k < np; ++k)
      for (int j = 0; j < np; ++j)
        for (int i = 0; i < np; ++i) {
          const std::size_t idx =
              base + static_cast<std::size_t>(i + np * (j + np * k));
          double sq = 0.0;
          for (int f = 0; f < 6; ++f) {
            const double v = q_.comp[static_cast<std::size_t>(f)][idx];
            sq += v * v;
          }
          total += 0.5 * sq * basis_.weight(i) * basis_.weight(j) *
                   basis_.weight(k) * jac;
        }
  }
  return total;
}

double MaxwellSolver::maxError(const AnalyticField& fn) const {
  const int np = basis_.numPoints();
  std::array<double, 6> v{};
  double err = 0.0;
  for (int e = 0; e < mesh_.numElements(); ++e) {
    const std::size_t base = static_cast<std::size_t>(e) * npe_;
    for (int k = 0; k < np; ++k)
      for (int j = 0; j < np; ++j)
        for (int i = 0; i < np; ++i) {
          const auto xyz = nodeCoord(e, i, j, k);
          fn(xyz[0], xyz[1], xyz[2], time_, v);
          const std::size_t idx =
              base + static_cast<std::size_t>(i + np * (j + np * k));
          for (int f = 0; f < 6; ++f)
            err = std::max(err,
                           std::abs(q_.comp[static_cast<std::size_t>(f)][idx] -
                                    v[static_cast<std::size_t>(f)]));
        }
  }
  return err;
}

std::vector<std::byte> MaxwellSolver::serializeComponent(int field) const {
  const auto& c = q_.comp.at(static_cast<std::size_t>(field));
  std::vector<std::byte> out(c.size() * sizeof(double));
  std::memcpy(out.data(), c.data(), out.size());
  return out;
}

void MaxwellSolver::deserializeComponent(int field,
                                         const std::vector<std::byte>& bytes) {
  auto& c = q_.comp.at(static_cast<std::size_t>(field));
  SIM_CHECK(bytes.size() == c.size() * sizeof(double),
            "restart payload size does not match the field component");
  std::memcpy(c.data(), bytes.data(), bytes.size());
}

AnalyticField planeWaveX(double lx, int waves) {
  const double kWave = 2.0 * std::numbers::pi * waves / lx;
  return [kWave](double x, double, double, double t,
                 std::array<double, 6>& out) {
    const double v = std::cos(kWave * (x - t));
    out = {0.0, v, 0.0, 0.0, 0.0, v};
  };
}

AnalyticField cavityTmMode() {
  constexpr double pi = std::numbers::pi;
  const double omega = std::numbers::sqrt2 * pi;
  return [omega](double x, double y, double, double t,
                 std::array<double, 6>& out) {
    const double sx = std::sin(pi * x), cx = std::cos(pi * x);
    const double sy = std::sin(pi * y), cy = std::cos(pi * y);
    out = {0.0,
           0.0,
           sx * sy * std::cos(omega * t),
           -pi / omega * sx * cy * std::sin(omega * t),
           pi / omega * cx * sy * std::sin(omega * t),
           0.0};
  };
}

}  // namespace bgckpt::nekcem
