#include "nekcem/gll.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bgckpt::nekcem {

double legendre(int n, double x) {
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double pm = 1.0, p = x;
  for (int k = 2; k <= n; ++k) {
    const double pn = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm) / k;
    pm = p;
    p = pn;
  }
  return p;
}

double legendreDeriv(int n, double x) {
  if (n == 0) return 0.0;
  // (1-x^2) P_n'(x) = n (P_{n-1}(x) - x P_n(x)); endpoints via limits.
  if (std::abs(std::abs(x) - 1.0) < 1e-14) {
    const double sign = (x > 0 || n % 2 == 1) ? 1.0 : -1.0;
    return sign * n * (n + 1) / 2.0;
  }
  return n * (legendre(n - 1, x) - x * legendre(n, x)) / (1.0 - x * x);
}

GllBasis::GllBasis(int order) : order_(order) {
  if (order < 1) throw std::invalid_argument("GLL order must be >= 1");
  const int np = order + 1;
  nodes_.resize(static_cast<std::size_t>(np));
  weights_.resize(static_cast<std::size_t>(np));
  diff_.assign(static_cast<std::size_t>(np * np), 0.0);

  // Interior GLL nodes are the roots of P_N'; find them by Newton iteration
  // seeded with Chebyshev-Gauss-Lobatto points.
  nodes_[0] = -1.0;
  nodes_[static_cast<std::size_t>(order)] = 1.0;
  for (int i = 1; i < order; ++i) {
    double x = -std::cos(std::numbers::pi * i / order);
    for (int it = 0; it < 100; ++it) {
      // Newton on f(x) = P_N'(x); f'(x) = P_N''(x) from the Legendre ODE:
      // (1-x^2) P'' - 2x P' + N(N+1) P = 0.
      const double p = legendre(order, x);
      const double dp = legendreDeriv(order, x);
      const double ddp =
          (2.0 * x * dp - order * (order + 1.0) * p) / (1.0 - x * x);
      const double dx = dp / ddp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes_[static_cast<std::size_t>(i)] = x;
  }

  // Weights: w_i = 2 / (N (N+1) P_N(x_i)^2).
  for (int i = 0; i < np; ++i) {
    const double p = legendre(order, nodes_[static_cast<std::size_t>(i)]);
    weights_[static_cast<std::size_t>(i)] =
        2.0 / (order * (order + 1.0) * p * p);
  }

  // Differentiation matrix (standard GLL formula).
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      const double xi = nodes_[static_cast<std::size_t>(i)];
      const double xj = nodes_[static_cast<std::size_t>(j)];
      double d;
      if (i != j) {
        d = legendre(order, xi) / (legendre(order, xj) * (xi - xj));
      } else if (i == 0) {
        d = -order * (order + 1.0) / 4.0;
      } else if (i == order) {
        d = order * (order + 1.0) / 4.0;
      } else {
        d = 0.0;
      }
      diff_[static_cast<std::size_t>(i * np + j)] = d;
    }
  }
}

}  // namespace bgckpt::nekcem
