#include "nekcem/perf_model.hpp"

namespace bgckpt::nekcem {

double PerfModel::stepSeconds(double pointsPerRank, int order) const {
  const double alpha = alphaN15 * (order + 1) / 16.0;
  return alpha * (pointsPerRank + kappa);
}

double PerfModel::efficiency(double pointsPerRankA, int ranksA,
                             double pointsPerRankB, int ranksB,
                             int order) const {
  // Ideal time at A from B's measured time, assuming fixed total work:
  // total points n = pointsPerRank * ranks must match to compare; we
  // compare speedups per point instead: eff = (tB / pointsB) / (tA /
  // pointsA) -- the per-point throughput ratio, which reduces to the
  // standard strong-scaling efficiency when n is fixed.
  const double perPointA = stepSeconds(pointsPerRankA, order) / pointsPerRankA;
  const double perPointB = stepSeconds(pointsPerRankB, order) / pointsPerRankB;
  (void)ranksA;
  (void)ranksB;
  return perPointB / perPointA;
}

}  // namespace bgckpt::nekcem
