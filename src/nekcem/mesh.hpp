// Structured hexahedral meshes for the mini SEDG solver.
//
// NekCEM production meshes are body-fitted hex meshes; for the reproduction
// we provide conforming structured boxes (the cylindrical-waveguide runs of
// the paper are weak-scaled bulk workloads, so a box with matching element
// and point counts exercises the same compute and checkpoint volume).
#pragma once

#include <array>
#include <stdexcept>

namespace bgckpt::nekcem {

/// Face numbering: 0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z.
inline constexpr int kNumFaces = 6;

enum class Boundary { kPeriodic, kPec };

class BoxMesh {
 public:
  BoxMesh(int ex, int ey, int ez, double lx, double ly, double lz,
          Boundary boundary)
      : ex_(ex), ey_(ey), ez_(ez), lx_(lx), ly_(ly), lz_(lz),
        boundary_(boundary) {
    if (ex < 1 || ey < 1 || ez < 1)
      throw std::invalid_argument("mesh needs >= 1 element per dimension");
    if (lx <= 0 || ly <= 0 || lz <= 0)
      throw std::invalid_argument("mesh extents must be positive");
  }

  int numElements() const { return ex_ * ey_ * ez_; }
  int ex() const { return ex_; }
  int ey() const { return ey_; }
  int ez() const { return ez_; }
  Boundary boundary() const { return boundary_; }

  double hx() const { return lx_ / ex_; }
  double hy() const { return ly_ / ey_; }
  double hz() const { return lz_ / ez_; }
  double lx() const { return lx_; }
  double ly() const { return ly_; }
  double lz() const { return lz_; }

  std::array<int, 3> elementCoord(int e) const {
    return {e % ex_, (e / ex_) % ey_, e / (ex_ * ey_)};
  }
  int elementIndex(int ix, int iy, int iz) const {
    return ix + ex_ * (iy + ey_ * iz);
  }

  /// Element origin (low corner) in physical space.
  std::array<double, 3> elementOrigin(int e) const {
    const auto c = elementCoord(e);
    return {c[0] * hx(), c[1] * hy(), c[2] * hz()};
  }

  /// Neighbour across `face`, or -1 at a PEC wall.
  int neighbor(int e, int face) const {
    auto c = elementCoord(e);
    const int dim = face / 2;
    const int dir = (face % 2 == 0) ? -1 : 1;
    int v = c[static_cast<std::size_t>(dim)] + dir;
    const int extent = dim == 0 ? ex_ : (dim == 1 ? ey_ : ez_);
    if (v < 0 || v >= extent) {
      if (boundary_ == Boundary::kPec) return -1;
      v = (v + extent) % extent;
    }
    c[static_cast<std::size_t>(dim)] = v;
    return elementIndex(c[0], c[1], c[2]);
  }

 private:
  int ex_, ey_, ez_;
  double lx_, ly_, lz_;
  Boundary boundary_;
};

}  // namespace bgckpt::nekcem
