// Mini spectral-element discontinuous-Galerkin Maxwell solver.
//
// Solves the source-free 3-D Maxwell curl equations in nondimensional form
// (epsilon = mu = c = 1):
//
//     dE/dt =  curl H - upwind flux terms
//     dH/dt = -curl E - upwind flux terms
//
// on a structured hex mesh with nodal GLL tensor-product bases. Volume
// terms are tensor applications of the 1-D differentiation matrix; face
// coupling uses the standard upwind numerical flux (Hesthaven & Warburton),
// and the diagonal GLL mass matrix turns the surface lift into a scalar per
// face node. Time stepping is the five-stage fourth-order low-storage
// Runge-Kutta scheme of Carpenter & Kennedy — the same pairing the paper's
// production NekCEM uses.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "nekcem/gll.hpp"
#include "nekcem/mesh.hpp"

namespace bgckpt::nekcem {

/// Field component order, matching the checkpoint block order.
enum Field : int { kEx = 0, kEy, kEz, kHx, kHy, kHz };
inline constexpr int kNumFieldComponents = 6;

/// All six components on all elements; per element the nodes are indexed
/// i + np*(j + np*k) with i along x.
struct FieldSet {
  std::array<std::vector<double>, kNumFieldComponents> comp;

  void resize(std::size_t dofPerComponent) {
    for (auto& c : comp) c.assign(dofPerComponent, 0.0);
  }
  void scaleAddScaled(double a, const FieldSet& other, double b);
};

/// Analytic field: out[6] = (Ex,Ey,Ez,Hx,Hy,Hz) at (x, y, z, t).
using AnalyticField =
    std::function<void(double x, double y, double z, double t,
                       std::array<double, 6>& out)>;

class MaxwellSolver {
 public:
  MaxwellSolver(BoxMesh mesh, int order);

  const BoxMesh& mesh() const { return mesh_; }
  const GllBasis& basis() const { return basis_; }
  int order() const { return basis_.order(); }
  int pointsPerDim() const { return basis_.numPoints(); }
  std::size_t dofPerComponent() const { return dof_; }
  std::size_t gridPoints() const { return dof_; }
  double time() const { return time_; }
  std::uint64_t stepsTaken() const { return steps_; }

  FieldSet& fields() { return q_; }
  const FieldSet& fields() const { return q_; }

  /// Physical coordinates of node (i,j,k) of element e.
  std::array<double, 3> nodeCoord(int e, int i, int j, int k) const;

  /// Overwrite the state with an analytic field at time t.
  void setSolution(const AnalyticField& fn, double t);

  /// Spatial operator: out = RHS(q).
  void evalRhs(const FieldSet& q, FieldSet& out) const;

  /// One LSRK4(5) step of size dt (NekCEM's production integrator).
  void step(double dt);

  /// One classical four-stage RK4 step (reference integrator; same formal
  /// order, more storage — used to cross-check the low-storage scheme).
  void stepClassicalRk4(double dt);

  /// Advance by `n` steps of size dt.
  void run(int n, double dt) {
    for (int s = 0; s < n; ++s) step(dt);
  }

  /// Conservative timestep estimate (CFL over the GLL node spacing).
  double stableDt() const;

  /// Discrete electromagnetic energy 0.5 * integral(|E|^2 + |H|^2).
  double energy() const;

  /// Max-norm error of the current state against an analytic field at the
  /// current time.
  double maxError(const AnalyticField& fn) const;

  /// Serialise one component to bytes (native doubles, element-major) —
  /// the per-rank "field block" of the checkpoint format.
  std::vector<std::byte> serializeComponent(int field) const;
  void deserializeComponent(int field, const std::vector<std::byte>& bytes);

  /// Restore `time`/`steps` (checkpoint metadata).
  void setTime(double t, std::uint64_t steps) {
    time_ = t;
    steps_ = steps;
  }

 private:
  void addVolumeTerms(const FieldSet& q, FieldSet& out) const;
  void addSurfaceTerms(const FieldSet& q, FieldSet& out) const;

  BoxMesh mesh_;
  GllBasis basis_;
  std::size_t dof_;       // nodes per component over all elements
  std::size_t npe_;       // nodes per element
  FieldSet q_;            // current state
  mutable FieldSet rhs_;  // scratch
  FieldSet res_;          // low-storage RK residual
  double time_ = 0.0;
  std::uint64_t steps_ = 0;
};

/// Periodic plane wave travelling along +x: Ey = Hz = cos(k(x - t)); an
/// exact solution used for verification. `waves` is the number of periods
/// across the domain length `lx`.
AnalyticField planeWaveX(double lx, int waves = 1);

/// Standing TM mode of a PEC cavity with unit cross-section in x-y
/// (z-invariant): Ez = sin(pi x) sin(pi y) cos(w t) with w = sqrt(2) pi.
/// Exact on a PEC box [0,1] x [0,1] x [0,Lz].
AnalyticField cavityTmMode();

}  // namespace bgckpt::nekcem
