#include "hostio/host_checkpoint.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "iofmt/file_io.hpp"

namespace bgckpt::hostio {

namespace {

using Clock = std::chrono::steady_clock;  // srclint:allow(wall-clock): hostio measures real host I/O, not simulated time

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One rbIO/two-phase handoff: the worker's block plus its trace context,
/// so the writer can link the block into its aggregate's lineage.
struct Package {
  int rank = 0;
  const HostRankData* data = nullptr;
  obs::OpTraceContext trace;
};

/// Simple MPSC handoff queue for rbIO worker -> writer packages.
class PackageQueue {
 public:
  void push(Package pkg) {
    {
      std::lock_guard lock(mu_);
      items_.push_back(pkg);
    }
    cv_.notify_one();
  }
  Package pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty(); });
    auto item = items_.front();
    items_.pop_front();
    return item;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Package> items_;
};

iofmt::FileSpec makeFileSpec(const HostSpec& spec, int part, int ranksInFile,
                             int firstGlobalRank) {
  iofmt::FileSpec fs;
  fs.step = static_cast<std::uint32_t>(spec.step);
  fs.part = static_cast<std::uint32_t>(part);
  fs.ranksInFile = static_cast<std::uint32_t>(ranksInFile);
  fs.firstGlobalRank = static_cast<std::uint32_t>(firstGlobalRank);
  fs.fieldBytesPerRank = spec.fieldBytesPerRank;
  fs.simTime = spec.simTime;
  fs.iteration = spec.iteration;
  fs.application = "bgckpt-host";
  fs.fieldNames = spec.fieldNames;
  return fs;
}

void validate(const HostSpec& spec, const HostConfig& config,
              const std::vector<HostRankData>& data) {
  const int np = static_cast<int>(data.size());
  if (np == 0) throw std::invalid_argument("no ranks");
  if (spec.fieldNames.empty()) throw std::invalid_argument("no fields");
  if (config.strategy != HostStrategy::k1Pfpp &&
      (config.nf < 1 || np % config.nf != 0))
    throw std::invalid_argument("nf must divide np");
  for (const auto& rank : data) {
    if (rank.fields.size() != spec.fieldNames.size())
      throw std::invalid_argument("rank data field count mismatch");
    for (const auto& f : rank.fields)
      if (f.size() != spec.fieldBytesPerRank)
        throw std::invalid_argument("rank data field size mismatch");
  }
}

}  // namespace

std::string hostCheckpointPath(const HostSpec& spec, int part) {
  return spec.directory + "/s" + std::to_string(spec.step) + ".part" +
         std::to_string(part);
}

HostRunResult writeCheckpoint(const HostSpec& spec, const HostConfig& config,
                              const std::vector<HostRankData>& data) {
  validate(spec, config, data);
  const int np = static_cast<int>(data.size());
  const int numFields = static_cast<int>(spec.fieldNames.size());
  const int nf = config.strategy == HostStrategy::k1Pfpp ? np : config.nf;
  const int groupSize = np / nf;

  HostRunResult result;
  result.perRankSeconds.assign(static_cast<std::size_t>(np), 0.0);
  for (int part = 0; part < nf; ++part)
    result.files.push_back(hostCheckpointPath(spec, part));
  std::filesystem::create_directories(spec.directory);

  // Shared writers (one per output file) for the coIO strategy.
  std::vector<std::unique_ptr<iofmt::CheckpointWriter>> sharedWriters;
  if (config.strategy == HostStrategy::kCoIo) {
    for (int part = 0; part < nf; ++part)
      sharedWriters.push_back(std::make_unique<iofmt::CheckpointWriter>(
          result.files[static_cast<std::size_t>(part)],
          makeFileSpec(spec, part, groupSize, part * groupSize)));
  }
  // Handoff queues, one per writer/aggregator (= per file).
  const bool usesQueues = config.strategy == HostStrategy::kRbIo ||
                          config.strategy == HostStrategy::kCoIoTwoPhase;
  std::vector<PackageQueue> queues(
      usesQueues ? static_cast<std::size_t>(nf) : 0);
  // Per-group completion latches for the two-phase collective semantics.
  struct GroupDone {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  std::vector<GroupDone> groupDone(
      config.strategy == HostStrategy::kCoIoTwoPhase
          ? static_cast<std::size_t>(nf)
          : 0);

  std::vector<double> handoff(static_cast<std::size_t>(np), 0.0);
  std::barrier gate(np);
  const auto t0 = Clock::now();

  // The OpTracer is single-threaded state shared by N real threads here;
  // every tracer touch goes through this mutex. Timestamps are wall
  // seconds since t0 (the coordinated start), the host analogue of
  // simulated time.
  std::mutex traceMu;
  const std::uint64_t payloadPerRank =
      static_cast<std::uint64_t>(numFields) * spec.fieldBytesPerRank;

  auto rankBody = [&](int rank) {
    gate.arrive_and_wait();  // coordinated checkpoint start
    const auto start = Clock::now();
    const int group = rank / groupSize;
    obs::OpTraceContext otc;
    if (config.tracer != nullptr) {
      std::lock_guard lock(traceMu);
      // srclint:allow(optrace-mint): hostio is a strategy-level backend; its rank writes originate here
      otc = obs::mintOpTrace(config.tracer, rank, "host",
                             static_cast<std::uint64_t>(rank) * payloadPerRank,
                             payloadPerRank, seconds(t0, start));
    }
    switch (config.strategy) {
      case HostStrategy::k1Pfpp: {
        iofmt::CheckpointWriter writer(
            result.files[static_cast<std::size_t>(rank)],
            makeFileSpec(spec, rank, 1, rank));
        for (int f = 0; f < numFields; ++f)
          writer.writeBlock(f, 0,
                            data[static_cast<std::size_t>(rank)]
                                .fields[static_cast<std::size_t>(f)]);
        writer.close();
        if (otc.live()) {
          std::lock_guard lock(traceMu);
          const double end = seconds(t0, Clock::now());
          otc.hop(obs::Hop::kHostWrite, seconds(t0, start), end,
                  payloadPerRank);
          otc.complete(end);
        }
        break;
      }
      case HostStrategy::kCoIo: {
        auto& writer = *sharedWriters[static_cast<std::size_t>(group)];
        const int local = rank % groupSize;
        for (int f = 0; f < numFields; ++f)
          writer.writeBlock(f, local,
                            data[static_cast<std::size_t>(rank)]
                                .fields[static_cast<std::size_t>(f)]);
        if (otc.live()) {
          std::lock_guard lock(traceMu);
          const double end = seconds(t0, Clock::now());
          otc.hop(obs::Hop::kHostWrite, seconds(t0, start), end,
                  payloadPerRank);
          otc.complete(end);
        }
        break;
      }
      case HostStrategy::kCoIoTwoPhase: {
        const bool isAggregator = rank % groupSize == 0;
        if (!isAggregator) {
          queues[static_cast<std::size_t>(group)].push(
              Package{rank, &data[static_cast<std::size_t>(rank)], otc});
          if (otc.live()) {
            std::lock_guard lock(traceMu);
            otc.hop(obs::Hop::kHandoffSend, seconds(t0, start),
                    seconds(t0, Clock::now()), payloadPerRank);
          }
          // Collective: block until the group's file is on disk. The
          // aggregator cascade-completes this rank's trace at commit.
          auto& gd = groupDone[static_cast<std::size_t>(group)];
          std::unique_lock lock(gd.mu);
          gd.cv.wait(lock, [&gd] { return gd.done; });
          break;
        }
        iofmt::CheckpointWriter writer(
            result.files[static_cast<std::size_t>(group)],
            makeFileSpec(spec, group, groupSize, group * groupSize));
        for (int f = 0; f < numFields; ++f)
          writer.writeBlock(f, 0,
                            data[static_cast<std::size_t>(rank)]
                                .fields[static_cast<std::size_t>(f)]);
        for (int received = 1; received < groupSize; ++received) {
          auto pkg = queues[static_cast<std::size_t>(group)].pop();
          const int local = pkg.rank % groupSize;
          for (int f = 0; f < numFields; ++f)
            writer.writeBlock(f, local,
                              pkg.data->fields[static_cast<std::size_t>(f)]);
          if (otc.live()) {
            std::lock_guard lock(traceMu);
            otc.link(pkg.trace);
          }
        }
        writer.close();
        if (otc.live()) {
          std::lock_guard lock(traceMu);
          const double end = seconds(t0, Clock::now());
          otc.hop(obs::Hop::kHostWrite, seconds(t0, start), end,
                  payloadPerRank * static_cast<std::uint64_t>(groupSize));
          otc.complete(end);
        }
        {
          auto& gd = groupDone[static_cast<std::size_t>(group)];
          std::lock_guard lock(gd.mu);
          gd.done = true;
        }
        groupDone[static_cast<std::size_t>(group)].cv.notify_all();
        break;
      }
      case HostStrategy::kRbIo: {
        const bool isWriter = rank % groupSize == 0;
        if (!isWriter) {
          queues[static_cast<std::size_t>(group)].push(
              Package{rank, &data[static_cast<std::size_t>(rank)], otc});
          handoff[static_cast<std::size_t>(rank)] =
              seconds(start, Clock::now());
          if (otc.live()) {
            std::lock_guard lock(traceMu);
            // Perceived cost only; the block's journey ends when the
            // writer's aggregate commit cascade-completes it.
            otc.hop(obs::Hop::kHandoffSend, seconds(t0, start),
                    seconds(t0, Clock::now()), payloadPerRank);
          }
          break;  // the worker is done: reduced blocking
        }
        iofmt::CheckpointWriter writer(
            result.files[static_cast<std::size_t>(group)],
            makeFileSpec(spec, group, groupSize, group * groupSize));
        // Own blocks first, then drain the group's packages.
        for (int f = 0; f < numFields; ++f)
          writer.writeBlock(f, 0,
                            data[static_cast<std::size_t>(rank)]
                                .fields[static_cast<std::size_t>(f)]);
        for (int received = 1; received < groupSize; ++received) {
          auto pkg = queues[static_cast<std::size_t>(group)].pop();
          const int local = pkg.rank % groupSize;
          for (int f = 0; f < numFields; ++f)
            writer.writeBlock(f, local,
                              pkg.data->fields[static_cast<std::size_t>(f)]);
          if (otc.live()) {
            std::lock_guard lock(traceMu);
            otc.link(pkg.trace);
          }
        }
        writer.close();
        if (otc.live()) {
          std::lock_guard lock(traceMu);
          const double end = seconds(t0, Clock::now());
          otc.hop(obs::Hop::kHostWrite, seconds(t0, start), end,
                  payloadPerRank * static_cast<std::uint64_t>(groupSize));
          otc.complete(end);
        }
        break;
      }
    }
    result.perRankSeconds[static_cast<std::size_t>(rank)] =
        seconds(start, Clock::now());
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) threads.emplace_back(rankBody, r);
  for (auto& t : threads) t.join();

  // coIO shared files close after all ranks contributed.
  for (auto& writer : sharedWriters) writer->close();

  result.wallSeconds = seconds(t0, Clock::now());
  const double payload = static_cast<double>(np) * numFields *
                         static_cast<double>(spec.fieldBytesPerRank);
  result.bandwidth = payload / result.wallSeconds;
  if (config.strategy == HostStrategy::kRbIo) {
    double maxHandoff = 0, workerBytes = 0;
    for (int r = 0; r < np; ++r)
      if (r % groupSize != 0) {
        maxHandoff = std::max(maxHandoff,
                              handoff[static_cast<std::size_t>(r)]);
        workerBytes += static_cast<double>(numFields) *
                       static_cast<double>(spec.fieldBytesPerRank);
      }
    result.maxHandoffSeconds = maxHandoff;
    result.perceivedBandwidth =
        maxHandoff > 0 ? workerBytes / maxHandoff : 0;
  }
  return result;
}

std::vector<HostRankData> readCheckpoint(HostSpec& spec, int np) {
  std::vector<HostRankData> data(static_cast<std::size_t>(np));
  int ranksSeen = 0;
  for (int part = 0; ranksSeen < np; ++part) {
    const std::string path = hostCheckpointPath(spec, part);
    if (!std::filesystem::exists(path))
      throw std::runtime_error("missing checkpoint part: " + path);
    iofmt::CheckpointReader reader(path);
    const auto& fs = reader.spec();
    if (part == 0) {
      spec.fieldNames = fs.fieldNames;
      spec.fieldBytesPerRank = fs.fieldBytesPerRank;
      spec.simTime = fs.simTime;
      spec.iteration = fs.iteration;
    }
    for (std::uint32_t local = 0; local < fs.ranksInFile; ++local) {
      const auto globalRank = fs.firstGlobalRank + local;
      if (globalRank >= static_cast<std::uint32_t>(np))
        throw std::runtime_error("checkpoint holds more ranks than expected");
      auto& rank = data[globalRank];
      rank.fields.resize(fs.fieldNames.size());
      for (std::size_t f = 0; f < fs.fieldNames.size(); ++f)
        rank.fields[f] =
            reader.readBlock(static_cast<int>(f), static_cast<int>(local));
      ++ranksSeen;
    }
  }
  return data;
}

bool verifyCheckpoint(const HostSpec& spec) {
  for (int part = 0;; ++part) {
    const std::string path = hostCheckpointPath(spec, part);
    if (!std::filesystem::exists(path)) return part > 0;
    iofmt::CheckpointReader reader(path);
    if (!reader.verify()) return false;
  }
}

}  // namespace bgckpt::hostio
