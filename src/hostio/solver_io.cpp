#include "hostio/solver_io.hpp"

#include <cstring>
#include <stdexcept>

namespace bgckpt::hostio {

namespace {

std::size_t dofPerRank(const nekcem::MaxwellSolver& solver, int np) {
  const int elements = solver.mesh().numElements();
  if (np < 1 || elements % np != 0)
    throw std::invalid_argument(
        "logical rank count must divide the element count");
  return solver.dofPerComponent() / static_cast<std::size_t>(np);
}

}  // namespace

HostSpec solverSpec(const nekcem::MaxwellSolver& solver, int np,
                    std::string directory, int step) {
  HostSpec spec;
  spec.directory = std::move(directory);
  spec.step = step;
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = dofPerRank(solver, np) * sizeof(double);
  spec.simTime = solver.time();
  spec.iteration = solver.stepsTaken();
  return spec;
}

HostRankData sliceSolverState(const nekcem::MaxwellSolver& solver, int rank,
                              int np) {
  const std::size_t dof = dofPerRank(solver, np);
  const std::size_t offset = static_cast<std::size_t>(rank) * dof;
  HostRankData data;
  data.fields.resize(nekcem::kNumFieldComponents);
  for (int f = 0; f < nekcem::kNumFieldComponents; ++f) {
    const auto& c = solver.fields().comp[static_cast<std::size_t>(f)];
    auto& out = data.fields[static_cast<std::size_t>(f)];
    out.resize(dof * sizeof(double));
    std::memcpy(out.data(), c.data() + offset, out.size());
  }
  return data;
}

std::vector<HostRankData> snapshotSolver(const nekcem::MaxwellSolver& solver,
                                         int np) {
  std::vector<HostRankData> data;
  data.reserve(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r)
    data.push_back(sliceSolverState(solver, r, np));
  return data;
}

void restoreSolver(nekcem::MaxwellSolver& solver,
                   const std::vector<HostRankData>& data,
                   const HostSpec& spec) {
  const int np = static_cast<int>(data.size());
  const std::size_t dof = dofPerRank(solver, np);
  for (int r = 0; r < np; ++r) {
    const auto& rank = data[static_cast<std::size_t>(r)];
    if (rank.fields.size() != nekcem::kNumFieldComponents ||
        rank.fields[0].size() != dof * sizeof(double))
      throw std::invalid_argument("checkpoint does not match solver layout");
    for (int f = 0; f < nekcem::kNumFieldComponents; ++f) {
      auto& c = solver.fields().comp[static_cast<std::size_t>(f)];
      std::memcpy(c.data() + static_cast<std::size_t>(r) * dof,
                  rank.fields[static_cast<std::size_t>(f)].data(),
                  dof * sizeof(double));
    }
  }
  solver.setTime(spec.simTime, spec.iteration);
}

}  // namespace bgckpt::hostio
