// Host-scale checkpointing: the paper's three strategies on real threads
// and real files.
//
// This backend keeps the algorithms honest at laptop scale: N ranks are N
// threads, files are real files in the iofmt container format, and the
// strategies move real bytes:
//
//   1PFPP  every thread creates and writes its own single-rank file;
//   coIO   threads in a group write their blocks concurrently into one
//          shared file at collective-layout offsets;
//   coIO two-phase: the group's blocks funnel through one aggregator
//          thread that commits them, and — unlike rbIO — every rank blocks
//          until its group's file is complete (collective semantics);
//   rbIO   workers hand their data to the group's writer thread through a
//          queue (the MPI_Isend analogue — measured as "perceived" time)
//          and the writer alone touches the filesystem.
//
// readCheckpoint() reassembles per-rank state from any strategy's files,
// so a run checkpointed with one strategy restarts under any other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/optrace.hpp"

namespace bgckpt::hostio {

struct HostSpec {
  std::string directory = "ckpt";
  int step = 0;
  std::vector<std::string> fieldNames;
  std::uint64_t fieldBytesPerRank = 0;
  double simTime = 0.0;
  std::uint64_t iteration = 0;
};

enum class HostStrategy { k1Pfpp, kCoIo, kCoIoTwoPhase, kRbIo };

struct HostConfig {
  HostStrategy strategy = HostStrategy::kRbIo;
  /// Output files (1PFPP ignores this; rbIO uses one writer per file).
  int nf = 1;
  /// Optional per-request causal tracing (obs/optrace.hpp): each rank's
  /// host write mints a context and records kHostWrite / handoff hops,
  /// with timestamps in wall seconds since the coordinated start. The
  /// tracer is single-threaded state; hostio serialises its calls behind
  /// an internal mutex, so the real-thread backend can share one tracer.
  obs::OpTracer* tracer = nullptr;
};

/// One rank's state: fields[f] holds fieldBytesPerRank bytes.
struct HostRankData {
  std::vector<std::vector<std::byte>> fields;
};

struct HostRunResult {
  double wallSeconds = 0;
  double bandwidth = 0;  ///< payload bytes / wallSeconds
  std::vector<double> perRankSeconds;
  /// rbIO only: worker-visible handoff metrics.
  double maxHandoffSeconds = 0;
  double perceivedBandwidth = 0;
  std::vector<std::string> files;
};

/// Path of part `part` of step `spec.step` (same scheme as the simulator).
std::string hostCheckpointPath(const HostSpec& spec, int part);

/// Write one coordinated checkpoint of `data` (size = np ranks).
HostRunResult writeCheckpoint(const HostSpec& spec, const HostConfig& config,
                              const std::vector<HostRankData>& data);

/// Read a checkpoint back (any strategy's file set), returning per-rank
/// state for `np` ranks. Also returns simTime/iteration via `spec`.
std::vector<HostRankData> readCheckpoint(HostSpec& spec, int np);

/// Verify every part file's checksums.
bool verifyCheckpoint(const HostSpec& spec);

}  // namespace bgckpt::hostio
