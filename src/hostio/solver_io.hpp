// Glue between the mini solver and the host checkpointing backend.
//
// A single in-process MaxwellSolver stands in for an SPMD job: its elements
// are partitioned into `np` logical ranks, each contributing six field
// blocks, exactly as production NekCEM ranks do. Checkpoints written this
// way restart the solver bit-for-bit.
#pragma once

#include "hostio/host_checkpoint.hpp"
#include "nekcem/maxwell.hpp"

namespace bgckpt::hostio {

/// Checkpoint geometry for a solver partitioned into np logical ranks.
/// Throws unless np divides the element count.
HostSpec solverSpec(const nekcem::MaxwellSolver& solver, int np,
                    std::string directory, int step);

/// Extract logical rank `rank`'s six field blocks (element-range slices).
HostRankData sliceSolverState(const nekcem::MaxwellSolver& solver, int rank,
                              int np);

/// All ranks at once.
std::vector<HostRankData> snapshotSolver(const nekcem::MaxwellSolver& solver,
                                         int np);

/// Restore a solver from per-rank blocks (inverse of snapshotSolver) and
/// reinstate time/iteration from `spec`.
void restoreSolver(nekcem::MaxwellSolver& solver,
                   const std::vector<HostRankData>& data,
                   const HostSpec& spec);

}  // namespace bgckpt::hostio
