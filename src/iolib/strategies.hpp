// The three checkpointing strategies and the coordinated-step driver.
#pragma once

#include "iolib/spec.hpp"
#include "iolib/stack.hpp"

namespace bgckpt::iolib {

/// Execute one coordinated checkpoint step on the simulated machine: all
/// ranks synchronise, write one checkpoint with the configured strategy,
/// and per-rank blocked times are measured. Per-op intervals are appended
/// to `stack.profile`.
CheckpointResult runCheckpoint(SimStack& stack, const CheckpointSpec& spec,
                               const StrategyConfig& cfg);

}  // namespace bgckpt::iolib
