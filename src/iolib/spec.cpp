#include "iolib/spec.hpp"

namespace bgckpt::iolib {

CheckpointSpec CheckpointSpec::nekcemWeakScaling(int np) {
  // Weak scaling at 2.4 MB per rank: (np, S) = (16K, ~39 GB),
  // (32K, ~78 GB), (64K, ~157 GB) as in Section V-B.
  (void)np;  // per-rank size is scale-invariant under weak scaling
  CheckpointSpec spec;
  spec.fieldBytesPerRank = 240'000;
  spec.numFields = 10;
  return spec;
}

const char* strategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::k1Pfpp: return "1PFPP";
    case StrategyKind::kCoIo: return "coIO";
    case StrategyKind::kRbIo: return "rbIO";
  }
  return "?";
}

std::string StrategyConfig::describe() const {
  std::string s = strategyName(kind);
  switch (kind) {
    case StrategyKind::k1Pfpp:
      s += " (nf=np)";
      break;
    case StrategyKind::kCoIo:
      s += " nf=" + std::to_string(nf);
      break;
    case StrategyKind::kRbIo:
      s += " np:ng=" + std::to_string(groupSize) + ":1, " +
           (nf == 1 ? "nf=1" : "nf=ng");
      break;
  }
  return s;
}

StrategyConfig StrategyConfig::onePfpp() {
  StrategyConfig cfg;
  cfg.kind = StrategyKind::k1Pfpp;
  return cfg;
}

StrategyConfig StrategyConfig::coIo(int nf) {
  StrategyConfig cfg;
  cfg.kind = StrategyKind::kCoIo;
  cfg.nf = nf;
  return cfg;
}

StrategyConfig StrategyConfig::rbIo(int groupSize, bool independentFiles) {
  StrategyConfig cfg;
  cfg.kind = StrategyKind::kRbIo;
  cfg.groupSize = groupSize;
  cfg.nf = independentFiles ? 0 : 1;  // 0 means "nf == ng", resolved at run
  return cfg;
}

}  // namespace bgckpt::iolib
