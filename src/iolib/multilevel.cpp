#include "iolib/multilevel.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "iolib/strategies.hpp"

namespace bgckpt::iolib {

namespace {

using mpi::Comm;
using sim::Task;

constexpr int kPartnerTag = 99;

struct LocalState {
  const CheckpointSpec* spec = nullptr;
  const MultilevelConfig* cfg = nullptr;
  SimStack* stack = nullptr;
  // One RAM-disk channel per node, shared by its ranks.
  std::vector<std::unique_ptr<sim::Resource>> ramDisk;
  std::vector<double> perRank;
};

Task<> localCheckpointRank(Comm world, LocalState& ls) {
  auto& sched = world.scheduler();
  const auto& mach = world.machine();
  const int rank = world.rank();
  const sim::Bytes bytes = ls.spec->bytesPerRank();

  co_await world.barrier();
  const double t0 = sched.now();
  auto otc = obs::mintOpTrace(
      ls.stack->obs.opTracer(), rank, "local",
      static_cast<std::uint64_t>(rank) * bytes, bytes, sched.now());

  // Level 1a: serialise onto the node's RAM disk (shared device).
  const auto node = static_cast<std::size_t>(
      mach.nodeOfRank(world.globalRank(rank)));
  co_await ls.ramDisk[node]->acquire();
  {
    sim::ScopedTokens hold(*ls.ramDisk[node], 1);
    const sim::SimTime writeStart = sched.now();
    co_await sched.delay(ls.cfg->localLatency +
                         sim::transferTime(bytes, ls.cfg->localBandwidth));
    otc.hop(obs::Hop::kLocalWrite, writeStart, sched.now(), bytes);
  }

  // Level 1b: mirror to the +x torus neighbour's RAM disk.
  if (ls.cfg->partnerCopy) {
    const int ranksPerNode = mach.ranksPerNode();
    const int partner =
        (rank + ranksPerNode) % world.size();  // same core, next node
    mpi::Message mirror = mpi::Message::ofSize(bytes);
    mirror.trace = otc;  // the mirror hop joins this rank's waterfall
    mpi::Request req =
        co_await world.isend(partner, kPartnerTag, std::move(mirror));
    (void)req;
    // Receive the mirror destined for us and store it locally.
    co_await world.recv(mpi::kAnySource, kPartnerTag);
    co_await ls.ramDisk[node]->acquire();
    {
      sim::ScopedTokens hold(*ls.ramDisk[node], 1);
      const sim::SimTime mirrorStart = sched.now();
      co_await sched.delay(sim::transferTime(bytes, ls.cfg->localBandwidth));
      otc.hop(obs::Hop::kLocalWrite, mirrorStart, sched.now(), bytes);
    }
  }
  otc.complete(sched.now());
  ls.perRank[static_cast<std::size_t>(rank)] = sched.now() - t0;
}

}  // namespace

MultilevelResult runMultilevelCheckpoint(SimStack& stack,
                                         const CheckpointSpec& spec,
                                         const MultilevelConfig& cfg) {
  if (cfg.pfsEvery < 1)
    throw std::invalid_argument("pfsEvery must be >= 1");
  const int np = stack.rt.numRanks();

  // Level 1 (local [+partner]) pass.
  LocalState ls;
  ls.spec = &spec;
  ls.cfg = &cfg;
  ls.stack = &stack;
  ls.perRank.assign(static_cast<std::size_t>(np), 0.0);
  ls.ramDisk.reserve(static_cast<std::size_t>(stack.mach.numNodes()));
  for (int n = 0; n < stack.mach.numNodes(); ++n)
    ls.ramDisk.push_back(std::make_unique<sim::Resource>(stack.sched, 1, "ram-disk"));

  stack.rt.spawnAll([&ls](Comm world) -> Task<> {
    co_await localCheckpointRank(world, ls);
  });
  stack.sched.run();
  if (stack.sched.liveRoots() != 0)
    throw std::runtime_error("multilevel local pass deadlocked");

  MultilevelResult result;
  result.localMakespan =
      *std::max_element(ls.perRank.begin(), ls.perRank.end());

  // Level 2: the periodic PFS drain with the configured paper strategy.
  CheckpointSpec pfsSpec = spec;
  pfsSpec.directory = spec.directory + "/pfs";
  const auto pfs = runCheckpoint(stack, pfsSpec, cfg.pfsStrategy);
  result.pfsMakespan = pfs.makespan;

  result.amortizedSeconds =
      ((cfg.pfsEvery - 1) * result.localMakespan +
       (result.localMakespan + result.pfsMakespan)) /
      cfg.pfsEvery;
  result.level1Speedup = result.pfsMakespan / result.localMakespan;
  result.amortizedSpeedup = result.pfsMakespan / result.amortizedSeconds;
  return result;
}

}  // namespace bgckpt::iolib
