// One-stop wiring of the full simulated Intrepid stack.
//
// Bundles the scheduler, machine model, torus + collective networks, ION
// forwarding, storage fabric, parallel filesystem and the MPI runtime, so
// benches and tests can stand up a complete system in one line:
//
//   iolib::SimStack stack(16384);                 // 16K-rank Intrepid, GPFS
//   auto result = runCheckpoint(stack, spec, cfg);
#pragma once

#include <cstdint>
#include <memory>

#include "fssim/parallel_fs.hpp"
#include "machine/bgp.hpp"
#include "mpisim/comm.hpp"
#include "netsim/ion.hpp"
#include "netsim/torus.hpp"
#include "obs/flightrec.hpp"
#include "obs/obs.hpp"
#include "profiling/profile.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/simcheck.hpp"
#include "storsim/fabric.hpp"

namespace bgckpt::iolib {

struct SimStackOptions {
  fs::FsConfig fsConfig = fs::gpfsConfig();
  stor::NoiseModel noise;  // paper conditions: shared system, normal load
  std::uint64_t seed = 2011;
  /// Scheduler tuning. `expectedEvents == 0` (the default) derives a
  /// capacity hint from numRanks; set `legacyQueue` to A/B the reference
  /// event queue (determinism tests).
  sim::Scheduler::Config scheduler;
  /// Runtime invariant checking (simcore/simcheck.hpp). `kAuto` consults
  /// the SIM_CHECK environment variable, then defaults to on in debug
  /// builds and off in release. Benches expose this as `--simcheck`.
  sim::SimCheckMode simcheck = sim::SimCheckMode::kAuto;
  /// Keep a crash flight recorder (obs/flightrec.hpp) of the last N trace
  /// events per layer; SimChecker violations dump it automatically, and
  /// bench/common dumps it on SHAPE CHECK failures. 0 disables (default —
  /// recording forces event construction on every instrumented site, which
  /// the no-sink fast path otherwise skips). Benches expose `--flightrec`.
  std::size_t flightRecorderEvents = 0;
};

class SimStack {
 public:
  explicit SimStack(int numRanks, SimStackOptions options = {});
  ~SimStack();

  sim::Scheduler sched;
  /// Invariant checker, when enabled (see SimStackOptions::simcheck). Null
  /// when disabled. Declared right after `sched` so it outlives every layer
  /// below: Resources self-report token leaks at their own destructors
  /// through sched.checker(), and the checker's finalize() reads the
  /// scheduler clock and queue depth.
  std::unique_ptr<sim::SimChecker> checker;
  machine::Machine mach;
  /// Observability hub for the whole stack. Every layer below reports into
  /// it; `profile` is fed from its kIo event stream via prof::IoProfileSink.
  /// Benches attach extra sinks (Chrome trace, JSONL) with obs.addSink().
  /// Declared before the layers (they hold a pointer) and after sched (its
  /// destructor reads the scheduler clock for end-of-run exports).
  obs::Observability obs;
  net::TorusNetwork torus;
  net::CollectiveNetwork coll;
  net::IonForwarding ion;
  stor::StorageFabric fabric;
  fs::ParallelFsSim fsys;
  mpi::Runtime rt;
  prof::IoProfile profile;
  /// Present iff SimStackOptions::flightRecorderEvents > 0 (also reachable
  /// through the global obs::dumpFlightRecorders registry).
  std::shared_ptr<obs::FlightRecorder> flightRecorder;
  std::uint64_t seed;
};

}  // namespace bgckpt::iolib
