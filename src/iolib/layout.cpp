#include "iolib/layout.hpp"

namespace bgckpt::iolib {

std::string checkpointPath(const CheckpointSpec& spec, int part) {
  return spec.directory + "/s" + std::to_string(spec.step) + ".part" +
         std::to_string(part);
}

std::vector<std::byte> makeRankPayload(const CheckpointSpec& spec,
                                       int globalRank) {
  std::vector<std::byte> out;
  out.resize(spec.bytesPerRank());
  std::size_t cursor = 0;
  for (int f = 0; f < spec.numFields; ++f)
    for (std::uint64_t i = 0; i < spec.fieldBytesPerRank; ++i)
      out[cursor++] = patternByte(globalRank, f, i);
  return out;
}

std::vector<std::byte> makeHeaderPayload(const CheckpointSpec& spec,
                                         int part) {
  std::vector<std::byte> out(spec.headerBytes, std::byte{0});
  const std::string text = "# vtk-like master header, step " +
                           std::to_string(spec.step) + " part " +
                           std::to_string(part) + ", fields " +
                           std::to_string(spec.numFields);
  for (std::size_t i = 0; i < text.size() && i < out.size(); ++i)
    out[i] = static_cast<std::byte>(text[i]);
  return out;
}

}  // namespace bgckpt::iolib
