#include "iolib/stack.hpp"

namespace bgckpt::iolib {

namespace {

sim::Scheduler::Config schedConfig(int numRanks, SimStackOptions& options) {
  sim::Scheduler::Config cfg = options.scheduler;
  if (cfg.expectedEvents == 0) {
    // Steady state holds a few queued events per rank (a pending delay or
    // wakeup each for the rank program, its sends, and the I/O path).
    cfg.expectedEvents = static_cast<std::size_t>(numRanks) * 4 + 1024;
  }
  return cfg;
}

}  // namespace

SimStack::SimStack(int numRanks, SimStackOptions options)
    : sched(schedConfig(numRanks, options)),
      mach(machine::intrepidMachine(numRanks)),
      torus(sched, mach, &obs),
      coll(mach),
      ion(sched, mach, &obs),
      fabric(sched, mach, options.seed, options.noise,
             options.fsConfig.serverConcurrency, &obs),
      fsys(sched, mach, ion, fabric, options.seed, options.fsConfig, &obs),
      rt(sched, mach, torus, coll, options.seed, &obs),
      seed(options.seed) {
  // The legacy profile rides the kIo event stream like any other sink, so
  // strategy code records each op exactly once.
  obs.addSink(std::make_shared<prof::IoProfileSink>(profile));
  obs.observeScheduler(sched);
}

}  // namespace bgckpt::iolib
