#include "iolib/stack.hpp"

namespace bgckpt::iolib {

SimStack::SimStack(int numRanks, SimStackOptions options)
    : mach(machine::intrepidMachine(numRanks)),
      torus(sched, mach),
      coll(mach),
      ion(sched, mach),
      fabric(sched, mach, options.seed, options.noise,
             options.fsConfig.serverConcurrency),
      fsys(sched, mach, ion, fabric, options.seed, options.fsConfig),
      rt(sched, mach, torus, coll, options.seed),
      seed(options.seed) {}

}  // namespace bgckpt::iolib
