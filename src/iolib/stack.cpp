#include "iolib/stack.hpp"

namespace bgckpt::iolib {

SimStack::SimStack(int numRanks, SimStackOptions options)
    : mach(machine::intrepidMachine(numRanks)),
      torus(sched, mach, &obs),
      coll(mach),
      ion(sched, mach, &obs),
      fabric(sched, mach, options.seed, options.noise,
             options.fsConfig.serverConcurrency, &obs),
      fsys(sched, mach, ion, fabric, options.seed, options.fsConfig, &obs),
      rt(sched, mach, torus, coll, options.seed, &obs),
      seed(options.seed) {
  // The legacy profile rides the kIo event stream like any other sink, so
  // strategy code records each op exactly once.
  obs.addSink(std::make_shared<prof::IoProfileSink>(profile));
  obs.observeScheduler(sched);
}

}  // namespace bgckpt::iolib
