#include "iolib/stack.hpp"

#include <iostream>

namespace bgckpt::iolib {

namespace {

sim::Scheduler::Config schedConfig(int numRanks, SimStackOptions& options) {
  sim::Scheduler::Config cfg = options.scheduler;
  if (cfg.expectedEvents == 0) {
    // Steady state holds a few queued events per rank (a pending delay or
    // wakeup each for the rank program, its sends, and the I/O path).
    cfg.expectedEvents = static_cast<std::size_t>(numRanks) * 4 + 1024;
  }
  return cfg;
}

std::unique_ptr<sim::SimChecker> makeChecker(sim::SimCheckMode mode) {
  if (mode == sim::SimCheckMode::kAuto) mode = sim::simCheckModeFromEnv();
  if (mode == sim::SimCheckMode::kAuto) {
#ifdef NDEBUG
    return nullptr;
#else
    mode = sim::SimCheckMode::kOn;
#endif
  }
  if (mode == sim::SimCheckMode::kOff) return nullptr;
  sim::SimChecker::Config cfg;
  cfg.abortOnViolation = mode != sim::SimCheckMode::kWarn;
  return std::make_unique<sim::SimChecker>(cfg);
}

}  // namespace

SimStack::SimStack(int numRanks, SimStackOptions options)
    : sched(schedConfig(numRanks, options)),
      checker(makeChecker(options.simcheck)),
      mach(machine::intrepidMachine(numRanks)),
      torus(sched, mach, &obs),
      coll(mach),
      ion(sched, mach, &obs),
      fabric(sched, mach, options.seed, options.noise,
             options.fsConfig.serverConcurrency, &obs),
      fsys(sched, mach, ion, fabric, options.seed, options.fsConfig, &obs),
      rt(sched, mach, torus, coll, options.seed, &obs),
      seed(options.seed) {
  // The legacy profile rides the kIo event stream like any other sink, so
  // strategy code records each op exactly once.
  obs.addSink(std::make_shared<prof::IoProfileSink>(profile));
  obs.observeScheduler(sched);
  if (options.flightRecorderEvents > 0) {
    flightRecorder = obs::FlightRecorder::create(options.flightRecorderEvents);
    obs.addSink(flightRecorder);
  }
  if (checker) {
    checker->attach(sched);
    // Mirror violations into the metrics registry and the scheduler-layer
    // counter stream so they land next to the run they corrupted in any
    // exported trace. The stderr report still happens inside the checker.
    // A violation also dumps the flight recorder(s): the last events per
    // layer, attributed, right next to the report that aborts the run.
    auto& count = obs.metrics().counter("simcheck.violations");
    checker->setReportFn([this, &count](const sim::SimChecker::Violation& v) {
      count.add();
      obs.counterSample(obs::Layer::kScheduler, "simcheck.violation", v.time,
                        static_cast<double>(count.value()));
      if (flightRecorder) flightRecorder->dump(std::cerr);
    });
  }
}

SimStack::~SimStack() {
  // Finalize while every layer (and obs, which the report mirror captures)
  // is still alive: frame-leak and hazard summaries attribute correctly,
  // and the mirror cannot dangle during member teardown afterwards.
  if (checker) {
    checker->finalize();
    checker->setReportFn({});
  }
}

}  // namespace bgckpt::iolib
