// Production campaign: compute steps interleaved with checkpoints — the
// end-to-end experiment behind Eq. (1).
//
// For blocking strategies (1PFPP, coIO) every rank computes and then
// checkpoints inline. For rbIO the writers are dedicated I/O ranks (as in
// the paper): workers compute and hand off packages with nonblocking
// sends, while writers drain checkpoint generations concurrently with the
// workers' ongoing computation — so checkpoint cost only appears on the
// critical path when a writer falls behind the checkpoint cadence.
#pragma once

#include "iolib/spec.hpp"
#include "iolib/stack.hpp"

namespace bgckpt::iolib {

struct CampaignConfig {
  int steps = 40;               ///< compute steps to run
  int checkpointEvery = 20;     ///< nc: checkpoint cadence
  double computeStepSeconds = 0.22;
  StrategyConfig strategy;
};

struct CampaignResult {
  double totalSeconds = 0;      ///< wall time of the whole campaign
  double computeSeconds = 0;    ///< nc-ideal compute-only time
  double ioOverheadSeconds = 0; ///< total - compute
  int checkpointsTaken = 0;

  /// End-to-end production improvement of this campaign over `other`
  /// (Eq. (1) measured directly: other.total / this.total).
  double improvementOver(const CampaignResult& other) const {
    return other.totalSeconds > 0 ? other.totalSeconds / totalSeconds : 0;
  }
};

/// Run the campaign on the simulated machine. Checkpoints are written as
/// steps s<k> for k = 0, 1, ... into spec.directory.
CampaignResult runCampaign(SimStack& stack, const CheckpointSpec& spec,
                           const CampaignConfig& cfg);

}  // namespace bgckpt::iolib
