// Checkpoint specification and strategy configuration.
//
// A checkpoint step writes every rank's local solver state — `numFields`
// equally-sized data blocks per rank (NekCEM: Ex,Ey,Ez,Hx,Hy,Hz plus grid
// coordinates and cell data) — into `nf` output files with a vtk-legacy
// style master header per file. The three strategies of the paper differ in
// *who* moves the bytes:
//
//   1PFPP  every rank creates and writes its own POSIX file (nf == np);
//   coIO   all ranks call MPI-IO collective writes, split into nf groups;
//   rbIO   each group's dedicated writer aggregates its workers' data via
//          nonblocking sends and commits it (independently when nf == ng,
//          collectively when nf == 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpiio/file.hpp"
#include "simcore/units.hpp"

namespace bgckpt::iolib {

struct CheckpointSpec {
  /// Bytes of one field block on one rank.
  sim::Bytes fieldBytesPerRank = 0;
  /// Field-like blocks per rank (6 E/H components + 3 coordinates + cells).
  int numFields = 10;
  /// Master header written once per output file.
  sim::Bytes headerBytes = 8 * sim::KiB;
  /// Output directory (all files of a step share it).
  std::string directory = "ckpt";
  /// Checkpoint step index (file naming).
  int step = 0;
  /// Generate and verify real content (small-scale correctness runs only).
  bool carryPayload = false;

  sim::Bytes bytesPerRank() const {
    return fieldBytesPerRank * static_cast<sim::Bytes>(numFields);
  }

  /// The paper's weak-scaling problem for `np` ranks: S = 39 GB at 16K,
  /// 78 GB at 32K, 156 GB at 64K (2.38 MB/rank, 10 blocks).
  static CheckpointSpec nekcemWeakScaling(int np);
};

enum class StrategyKind { k1Pfpp, kCoIo, kRbIo };

const char* strategyName(StrategyKind kind);

struct StrategyConfig {
  StrategyKind kind = StrategyKind::kRbIo;
  /// Number of output files. 1PFPP ignores this (nf == np).
  /// coIO: ranks are split into nf groups of np/nf (np:nf in paper terms).
  /// rbIO: either nf == ng (independent writers) or nf == 1 (collective).
  int nf = 1;
  /// rbIO only: ranks per group (one writer each); np:ng = groupSize:1.
  int groupSize = 64;
  /// MPI-IO hints for collective writes.
  io::Hints hints;
  /// rbIO writer aggregation buffer (flush granularity when nf == ng).
  sim::Bytes writerBuffer = 64 * sim::MiB;
  /// 1PFPP only: one subdirectory per rank, dodging the single-directory
  /// metadata storm (the paper: "Better performance may be achieved by
  /// producing a single file per directory. However ... manageability
  /// becomes a significant issue").
  bool onePfppPrivateDirs = false;

  std::string describe() const;

  static StrategyConfig onePfpp();
  static StrategyConfig coIo(int nf);
  /// rbIO with np:ng = groupSize:1; nf == ng when independentFiles.
  static StrategyConfig rbIo(int groupSize, bool independentFiles);
};

struct CheckpointResult {
  double makespan = 0;           ///< slowest rank's blocked time
  double bandwidth = 0;          ///< logical bytes / makespan
  sim::Bytes logicalBytes = 0;   ///< headers + all field data
  std::vector<double> perRankTime;
  /// rbIO extras (zero for other strategies):
  double workerMakespan = 0;         ///< slowest worker (perceived)
  double writerMakespan = 0;         ///< slowest writer
  double perceivedBandwidth = 0;     ///< worker bytes / slowest Isend
  double maxIsendSeconds = 0;
  int numWriters = 0;
};

}  // namespace bgckpt::iolib
