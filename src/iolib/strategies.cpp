#include "iolib/strategies.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "iolib/campaign.hpp"
#include "iolib/layout.hpp"
#include "obs/obs.hpp"

namespace bgckpt::iolib {

namespace {

constexpr int kPackageTag = 77;

using mpi::Comm;
using mpi::Message;
using sim::Task;

std::span<const std::byte> slice(const std::vector<std::byte>& v,
                                 std::uint64_t off, std::uint64_t len) {
  return std::span<const std::byte>(v.data() + off, len);
}

struct RunState {
  CheckpointSpec spec;
  StrategyConfig cfg;
  SimStack* stack = nullptr;
  int nf = 0;          // resolved file count
  int groupSize = 0;   // ranks per file group
  int packageTag = kPackageTag;  // per-generation tag in campaigns
  double t0 = 0;
  std::vector<double> perRank;
  std::vector<double> isendTime;  // workers (rbIO); -1 elsewhere
  std::vector<char> isWriter;
  // Sampled-telemetry probes (aggregate across the run's writers): dormant
  // handles unless --telemetry enabled the registry.
  obs::Probe* tHandoff = nullptr;    // worker packages sent, not yet received
  obs::Probe* tAggBuffer = nullptr;  // bytes parked in writer agg buffers
};

RunState makeRunState(SimStack& stack, const CheckpointSpec& spec,
                      const StrategyConfig& cfg) {
  const int np = stack.rt.numRanks();
  RunState st;
  st.spec = spec;
  st.cfg = cfg;
  st.stack = &stack;
  switch (cfg.kind) {
    case StrategyKind::k1Pfpp:
      st.nf = np;
      st.groupSize = 1;
      break;
    case StrategyKind::kCoIo:
      if (cfg.nf < 1 || np % cfg.nf != 0)
        throw std::invalid_argument("coIO: nf must divide np");
      st.nf = cfg.nf;
      st.groupSize = np / cfg.nf;
      break;
    case StrategyKind::kRbIo:
      if (cfg.groupSize < 2 || np % cfg.groupSize != 0)
        throw std::invalid_argument("rbIO: groupSize must divide np");
      st.groupSize = cfg.groupSize;
      st.nf = cfg.nf == 1 ? 1 : np / cfg.groupSize;
      break;
  }
  st.perRank.assign(static_cast<std::size_t>(np), 0.0);
  st.isendTime.assign(static_cast<std::size_t>(np), -1.0);
  st.isWriter.assign(static_cast<std::size_t>(np), 0);
  if (cfg.kind == StrategyKind::kRbIo) {
    st.tHandoff = &stack.obs.telemetry().probe("io.rbio.handoff_inflight",
                                               obs::ProbeKind::kGauge);
    st.tAggBuffer = &stack.obs.telemetry().probe("io.rbio.agg_buffer_bytes",
                                                 obs::ProbeKind::kGauge);
  }
  return st;
}

// ---------------------------------------------------------------- 1PFPP --

Task<> run1Pfpp(Comm world, RunState& st) {
  auto& fsys = st.stack->fsys;
  auto& sched = st.stack->sched;
  auto* obs = &st.stack->obs;
  const int rank = world.rank();
  const int client = world.globalRank(rank);
  const auto& spec = st.spec;
  GroupFileLayout layout(spec, 1);

  // OS and network skew randomises the order in which ranks reach the
  // metadata service — this is what turns the create queue into the
  // scattered per-rank times of Fig. 9.
  {
    sim::RngStream arrival(st.stack->seed, "1pfpp-arrival",
                           static_cast<std::uint64_t>(rank));
    co_await sched.delay(arrival.uniform(0.0, 0.05));
  }

  std::vector<std::byte> header, payload;
  if (spec.carryPayload) {
    header = makeHeaderPayload(spec, rank);
    payload = makeRankPayload(spec, rank);
  }

  // Optional single-file-per-directory variant: each rank creates in its
  // own directory, so creates no longer serialise on one directory.
  const std::string path =
      st.cfg.onePfppPrivateDirs
          ? spec.directory + "/r" + std::to_string(rank) + "/s" +
                std::to_string(spec.step)
          : checkpointPath(spec, rank);
  auto* tracer = obs->opTracer();
  obs::IoOpSpan createOp(obs, sched, rank, "create");
  auto createOtc = obs::mintOpTrace(tracer, rank, "create", 0, 0, sched.now());
  auto fh = co_await fsys.create(client, path, createOtc);
  createOtc.complete(sched.now());
  createOp.stop();

  {
    obs::IoOpSpan hdrOp(obs, sched, rank, "write");
    auto otc = obs::mintOpTrace(tracer, rank, "write", 0, spec.headerBytes,
                                sched.now());
    co_await fsys.write(client, fh, 0, spec.headerBytes,
                        spec.carryPayload ? std::span<const std::byte>(header)
                                          : std::span<const std::byte>(),
                        otc);
    otc.complete(sched.now());
    hdrOp.stop(spec.headerBytes);
  }

  for (int f = 0; f < spec.numFields; ++f) {
    obs::IoOpSpan writeOp(obs, sched, rank, "write");
    auto otc = obs::mintOpTrace(tracer, rank, "write", layout.fieldOffset(f, 0),
                                spec.fieldBytesPerRank, sched.now());
    co_await fsys.write(
        client, fh, layout.fieldOffset(f, 0), spec.fieldBytesPerRank,
        spec.carryPayload
            ? slice(payload,
                    static_cast<std::uint64_t>(f) * spec.fieldBytesPerRank,
                    spec.fieldBytesPerRank)
            : std::span<const std::byte>(),
        otc);
    otc.complete(sched.now());
    writeOp.stop(spec.fieldBytesPerRank);
  }

  obs::IoOpSpan closeOp(obs, sched, rank, "close");
  auto closeOtc = obs::mintOpTrace(tracer, rank, "close", 0, 0, sched.now());
  co_await fsys.close(client, fh, closeOtc);
  closeOtc.complete(sched.now());
  closeOp.stop();
}

// ----------------------------------------------------------------- coIO --

Task<> runCoIo(Comm world, RunState& st) {
  auto& fsys = st.stack->fsys;
  auto& sched = st.stack->sched;
  auto* obs = &st.stack->obs;
  const auto& spec = st.spec;
  const int rank = world.rank();
  const int part = rank / st.groupSize;

  Comm sub = co_await world.split(part, rank);
  GroupFileLayout layout(spec, st.groupSize);

  std::vector<std::byte> header, payload;
  if (spec.carryPayload) {
    header = makeHeaderPayload(spec, part);
    payload = makeRankPayload(spec, world.globalRank(rank));
  }

  io::MpiFile file = co_await io::MpiFile::open(
      sub, fsys, checkpointPath(spec, part), st.cfg.hints);

  auto* tracer = obs->opTracer();

  // Header round: group-local rank 0 contributes the master header.
  {
    obs::IoOpSpan op(obs, sched, rank, "write");
    const bool isRoot = sub.rank() == 0;
    auto otc = obs::mintOpTrace(tracer, rank, "write", 0,
                                isRoot ? spec.headerBytes : 0, sched.now());
    co_await file.writeAtAll(0, isRoot ? spec.headerBytes : 0,
                             (isRoot && spec.carryPayload)
                                 ? std::span<const std::byte>(header)
                                 : std::span<const std::byte>(),
                             otc);
    otc.complete(sched.now());
    op.stop(sub.rank() == 0 ? spec.headerBytes : 0);
  }

  // One collective round per field, committed in file order.
  for (int f = 0; f < spec.numFields; ++f) {
    obs::IoOpSpan op(obs, sched, rank, "write");
    auto otc = obs::mintOpTrace(tracer, rank, "write",
                                layout.fieldOffset(f, sub.rank()),
                                spec.fieldBytesPerRank, sched.now());
    co_await file.writeAtAll(
        layout.fieldOffset(f, sub.rank()), spec.fieldBytesPerRank,
        spec.carryPayload
            ? slice(payload,
                    static_cast<std::uint64_t>(f) * spec.fieldBytesPerRank,
                    spec.fieldBytesPerRank)
            : std::span<const std::byte>(),
        otc);
    otc.complete(sched.now());
    op.stop(spec.fieldBytesPerRank);
  }

  obs::IoOpSpan closeOp(obs, sched, rank, "close");
  auto closeOtc = obs::mintOpTrace(tracer, rank, "close", 0, 0, sched.now());
  co_await file.close(closeOtc);
  closeOtc.complete(sched.now());
  closeOp.stop();
}

// ----------------------------------------------------------------- rbIO --

Task<> rbIoWorker(Comm world, RunState& st, int writerRank) {
  auto& sched = st.stack->sched;
  auto* obs = &st.stack->obs;
  const auto& spec = st.spec;
  const int rank = world.rank();

  Message package;
  package.size = spec.bytesPerRank();
  package.meta = static_cast<std::uint64_t>(rank);
  if (spec.carryPayload)
    package.payload = std::make_shared<const std::vector<std::byte>>(
        makeRankPayload(spec, world.globalRank(rank)));
  // The handoff request rides the package to the writer and is completed by
  // the cascade when the writer's aggregate commit lands — its end-to-end
  // latency is "rank write to DDN commit", not just the isend.
  package.trace = obs::mintOpTrace(
      obs->opTracer(), rank, "handoff",
      static_cast<std::uint64_t>(rank) * spec.bytesPerRank(),
      spec.bytesPerRank(), sched.now());

  // The worker's entire blocking I/O cost: one nonblocking send.
  obs->begin(obs::Layer::kIo, rank, "handoff", sched.now());
  const double t0 = sched.now();
  st.tHandoff->add(1.0);
  obs::IoOpSpan sendOp(obs, sched, rank, "send");
  mpi::Request req =
      co_await world.isend(writerRank, st.packageTag, std::move(package));
  (void)req;  // fire and forget: the writer's receive loop bounds delivery
  sendOp.stop(spec.bytesPerRank());
  const double dt = sched.now() - t0;
  st.isendTime[static_cast<std::size_t>(rank)] = dt;
  obs->end(obs::Layer::kIo, rank, "handoff", sched.now());
}

Task<> rbIoWriter(Comm world, Comm writerComm, RunState& st) {
  auto& fsys = st.stack->fsys;
  auto& sched = st.stack->sched;
  auto* obs = &st.stack->obs;
  const auto& spec = st.spec;
  const int rank = world.rank();
  const int client = world.globalRank(rank);
  const int group = rank / st.cfg.groupSize;
  const int g = st.cfg.groupSize;
  const bool independent = st.cfg.nf != 1;

  // The writer's aggregate request: covers recv + reorder + commit, with
  // the group's handoff requests linked as lineage children (64:1 fan-in).
  auto* tracer = obs->opTracer();
  const sim::Bytes groupBytes =
      static_cast<sim::Bytes>(g) * spec.bytesPerRank();
  auto commitOtc = obs::mintOpTrace(
      tracer, rank, "commit",
      static_cast<std::uint64_t>(group) * groupBytes, groupBytes, sched.now());
  // The writer's own block never crosses the network but is still one of
  // the 64 merged inputs; minting it keeps the fan-in count honest.
  commitOtc.link(obs::mintOpTrace(
      tracer, rank, "handoff",
      static_cast<std::uint64_t>(rank) * spec.bytesPerRank(),
      spec.bytesPerRank(), sched.now()));
  const sim::SimTime recvStart = sched.now();

  // Gather the group's packages (the writer's own data needs no send).
  std::map<int, std::shared_ptr<const std::vector<std::byte>>> packages;
  if (spec.carryPayload)
    packages[rank] = std::make_shared<const std::vector<std::byte>>(
        makeRankPayload(spec, world.globalRank(rank)));
  obs->begin(obs::Layer::kIo, rank, "aggregate", sched.now());
  st.tAggBuffer->add(static_cast<double>(spec.bytesPerRank()));
  {
    obs::IoOpSpan op(obs, sched, rank, "recv");
    for (int i = 1; i < g; ++i) {
      Message msg = co_await world.recv(mpi::kAnySource, st.packageTag);
      commitOtc.link(msg.trace);
      st.tHandoff->add(-1.0);
      st.tAggBuffer->add(static_cast<double>(spec.bytesPerRank()));
      if (spec.carryPayload)
        packages[static_cast<int>(msg.meta)] = msg.payload;
    }
    op.stop(static_cast<sim::Bytes>(g - 1) * spec.bytesPerRank());
  }

  // Reorder the group's blocks into field-major file order (a local copy).
  co_await sched.delay(sim::transferTime(
      groupBytes, world.machine().compute().memoryBandwidth));
  commitOtc.hop(obs::Hop::kHandoffRecv, recvStart, sched.now(), groupBytes);

  // Assemble real file content when carrying payloads.
  GroupFileLayout groupLayout(spec, g);
  std::vector<std::byte> fileBytes;
  if (spec.carryPayload && independent) {
    fileBytes.resize(groupLayout.fileBytes());
    auto header = makeHeaderPayload(spec, group);
    std::copy(header.begin(), header.end(), fileBytes.begin());
    for (int f = 0; f < spec.numFields; ++f)
      for (int r = 0; r < g; ++r) {
        const auto& pkg = *packages.at(group * g + r);
        std::copy_n(pkg.begin() +
                        static_cast<std::ptrdiff_t>(
                            static_cast<std::uint64_t>(f) *
                            spec.fieldBytesPerRank),
                    spec.fieldBytesPerRank,
                    fileBytes.begin() +
                        static_cast<std::ptrdiff_t>(
                            groupLayout.fieldOffset(f, r)));
      }
  }
  obs->end(obs::Layer::kIo, rank, "aggregate", sched.now());

  obs->begin(obs::Layer::kIo, rank, "commit", sched.now());
  if (independent) {
    // nf == ng: each writer owns one file; MPI_File_write_at semantics on
    // MPI_COMM_SELF, realised directly on the filesystem. The writer's
    // buffer lets it batch multiple fields per flush.
    const std::string path = checkpointPath(spec, group);
    obs::IoOpSpan createOp(obs, sched, rank, "create");
    auto fh = co_await fsys.create(client, path, commitOtc);
    createOp.stop();

    const sim::Bytes total = groupLayout.fileBytes();
    std::uint64_t cursor = 0;
    double buffered = static_cast<double>(groupBytes);
    while (cursor < total) {
      const sim::Bytes chunk =
          std::min<sim::Bytes>(st.cfg.writerBuffer, total - cursor);
      obs::IoOpSpan op(obs, sched, rank, "write");
      co_await fsys.write(client, fh, cursor, chunk,
                          spec.carryPayload
                              ? slice(fileBytes, cursor, chunk)
                              : std::span<const std::byte>(),
                          commitOtc);
      op.stop(chunk);
      cursor += chunk;
      const double drained = std::min(buffered, static_cast<double>(chunk));
      st.tAggBuffer->add(-drained);
      buffered -= drained;
    }
    st.tAggBuffer->add(-buffered);

    obs::IoOpSpan closeOp(obs, sched, rank, "close");
    co_await fsys.close(client, fh, commitOtc);
    closeOp.stop();
  } else {
    // nf == 1: writers jointly commit one shared file with collective
    // nonblocking writes; each field must land before the next starts.
    GroupFileLayout globalLayout(spec, world.size());
    io::MpiFile file = co_await io::MpiFile::open(
        writerComm, fsys, checkpointPath(spec, 0), st.cfg.hints, commitOtc);
    std::vector<std::byte> header;
    if (spec.carryPayload) header = makeHeaderPayload(spec, 0);
    {
      const bool isRoot = writerComm.rank() == 0;
      obs::IoOpSpan op(obs, sched, rank, "write");
      co_await file.writeAtAll(0, isRoot ? spec.headerBytes : 0,
                               (isRoot && spec.carryPayload)
                                   ? std::span<const std::byte>(header)
                                   : std::span<const std::byte>(),
                               commitOtc);
      op.stop(isRoot ? spec.headerBytes : 0);
    }
    std::vector<std::byte> section;
    double buffered = static_cast<double>(groupBytes);
    for (int f = 0; f < spec.numFields; ++f) {
      const sim::Bytes sectionBytes =
          static_cast<sim::Bytes>(g) * spec.fieldBytesPerRank;
      if (spec.carryPayload) {
        section.resize(sectionBytes);
        for (int r = 0; r < g; ++r) {
          const auto& pkg = *packages.at(group * g + r);
          std::copy_n(
              pkg.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::uint64_t>(f) *
                                spec.fieldBytesPerRank),
              spec.fieldBytesPerRank,
              section.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::uint64_t>(r) *
                                    spec.fieldBytesPerRank));
        }
      }
      obs::IoOpSpan op(obs, sched, rank, "write");
      co_await file.writeAtAll(
          globalLayout.fieldOffset(f, group * g), sectionBytes,
          spec.carryPayload ? std::span<const std::byte>(section)
                            : std::span<const std::byte>(),
          commitOtc);
      op.stop(sectionBytes);
      const double drained =
          std::min(buffered, static_cast<double>(sectionBytes));
      st.tAggBuffer->add(-drained);
      buffered -= drained;
    }
    st.tAggBuffer->add(-buffered);
    obs::IoOpSpan closeOp(obs, sched, rank, "close");
    co_await file.close(commitOtc);
    closeOp.stop();
  }
  obs->end(obs::Layer::kIo, rank, "commit", sched.now());
  // Completes the whole lineage: the 63 handed-off blocks (plus the
  // writer's own) end their journey the instant the aggregate commits.
  commitOtc.complete(sched.now());
}

// --------------------------------------------------------------- driver --

Task<> rankProgram(Comm world, RunState& st) {
  const int rank = world.rank();
  const bool isWriter = st.cfg.kind == StrategyKind::kRbIo
                            ? rank % st.cfg.groupSize == 0
                            : false;
  st.isWriter[static_cast<std::size_t>(rank)] = isWriter ? 1 : 0;

  // rbIO nf=1 needs a writers-only communicator; form it outside the timed
  // region (it is a one-time setup cost in the application).
  Comm writerComm;
  if (st.cfg.kind == StrategyKind::kRbIo)
    writerComm = co_await world.split(isWriter ? 0 : 1, rank);

  // Coordinated checkpoint: everyone starts together.
  co_await world.barrier();
  if (rank == 0) st.t0 = world.scheduler().now();
  const double start = world.scheduler().now();
  auto* obs = &st.stack->obs;
  obs->begin(obs::Layer::kApp, rank, "checkpoint", start);

  switch (st.cfg.kind) {
    case StrategyKind::k1Pfpp:
      co_await run1Pfpp(world, st);
      break;
    case StrategyKind::kCoIo:
      co_await runCoIo(world, st);
      break;
    case StrategyKind::kRbIo:
      if (isWriter)
        co_await rbIoWriter(world, writerComm, st);
      else
        co_await rbIoWorker(world, st, (rank / st.cfg.groupSize) *
                                           st.cfg.groupSize);
      break;
  }
  obs->end(obs::Layer::kApp, rank, "checkpoint", world.scheduler().now());
  st.perRank[static_cast<std::size_t>(rank)] =
      world.scheduler().now() - start;
}

}  // namespace

CheckpointResult runCheckpoint(SimStack& stack, const CheckpointSpec& spec,
                               const StrategyConfig& cfg) {
  const int np = stack.rt.numRanks();
  RunState st = makeRunState(stack, spec, cfg);

  stack.rt.spawnAll(
      [&st](Comm world) -> Task<> { co_await rankProgram(world, st); });
  stack.sched.run();
  if (stack.sched.liveRoots() != 0)
    throw std::runtime_error("checkpoint run deadlocked");

  CheckpointResult result;
  result.perRankTime = st.perRank;
  result.makespan =
      *std::max_element(st.perRank.begin(), st.perRank.end());
  const int ng = cfg.kind == StrategyKind::kRbIo ? np / cfg.groupSize : 0;
  result.numWriters = ng;
  result.logicalBytes =
      static_cast<sim::Bytes>(np) * spec.bytesPerRank() +
      static_cast<sim::Bytes>(st.nf) * spec.headerBytes;
  result.bandwidth =
      static_cast<double>(result.logicalBytes) / result.makespan;
  if (cfg.kind == StrategyKind::kRbIo) {
    double workerMax = 0, writerMax = 0, isendMax = 0;
    for (int r = 0; r < np; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (st.isWriter[i]) {
        writerMax = std::max(writerMax, st.perRank[i]);
      } else {
        workerMax = std::max(workerMax, st.perRank[i]);
        isendMax = std::max(isendMax, st.isendTime[i]);
      }
    }
    result.workerMakespan = workerMax;
    result.writerMakespan = writerMax;
    result.maxIsendSeconds = isendMax;
    const auto workerBytes =
        static_cast<double>(np - ng) *
        static_cast<double>(spec.bytesPerRank());
    result.perceivedBandwidth = isendMax > 0 ? workerBytes / isendMax : 0;
  }
  return result;
}

// -------------------------------------------------------------- campaign --

namespace {

struct CampaignState {
  CampaignConfig cfg;
  SimStack* stack = nullptr;
  // One RunState per checkpoint generation (distinct step id and, for
  // rbIO, a distinct package tag so generations never mix at the writer).
  std::vector<std::unique_ptr<RunState>> generations;
  std::vector<double> rankEnd;
};

Task<> campaignBlockingRank(Comm world, CampaignState& cs) {
  auto& sched = world.scheduler();
  co_await world.barrier();
  const double t0 = sched.now();
  int gen = 0;
  for (int step = 1; step <= cs.cfg.steps; ++step) {
    co_await sched.delay(cs.cfg.computeStepSeconds);
    if (step % cs.cfg.checkpointEvery == 0) {
      RunState& st = *cs.generations[static_cast<std::size_t>(gen++)];
      if (cs.cfg.strategy.kind == StrategyKind::k1Pfpp)
        co_await run1Pfpp(world, st);
      else
        co_await runCoIo(world, st);
    }
  }
  cs.rankEnd[static_cast<std::size_t>(world.rank())] = sched.now() - t0;
}

Task<> campaignRbIoRank(Comm world, CampaignState& cs) {
  auto& sched = world.scheduler();
  const int rank = world.rank();
  const int g = cs.cfg.strategy.groupSize;
  const bool isWriter = rank % g == 0;
  Comm writerComm = co_await world.split(isWriter ? 0 : 1, rank);
  co_await world.barrier();
  const double t0 = sched.now();

  const int numCkpts = cs.cfg.steps / cs.cfg.checkpointEvery;
  if (isWriter) {
    // Dedicated I/O rank: drain one generation after another, concurrent
    // with the workers' computation.
    for (int k = 0; k < numCkpts; ++k)
      co_await rbIoWriter(world, writerComm,
                          *cs.generations[static_cast<std::size_t>(k)]);
  } else {
    int gen = 0;
    for (int step = 1; step <= cs.cfg.steps; ++step) {
      co_await sched.delay(cs.cfg.computeStepSeconds);
      if (step % cs.cfg.checkpointEvery == 0) {
        RunState& st = *cs.generations[static_cast<std::size_t>(gen++)];
        co_await rbIoWorker(world, st, (rank / g) * g);
      }
    }
  }
  cs.rankEnd[static_cast<std::size_t>(rank)] = sched.now() - t0;
}

}  // namespace

CampaignResult runCampaign(SimStack& stack, const CheckpointSpec& spec,
                           const CampaignConfig& cfg) {
  if (cfg.steps < 1 || cfg.checkpointEvery < 1)
    throw std::invalid_argument("campaign needs positive steps and cadence");
  const int np = stack.rt.numRanks();
  const int numCkpts = cfg.steps / cfg.checkpointEvery;

  CampaignState cs;
  cs.cfg = cfg;
  cs.stack = &stack;
  cs.rankEnd.assign(static_cast<std::size_t>(np), 0.0);
  for (int k = 0; k < numCkpts; ++k) {
    CheckpointSpec genSpec = spec;
    genSpec.step = k;
    auto st = std::make_unique<RunState>(
        makeRunState(stack, genSpec, cfg.strategy));
    st->packageTag = kPackageTag + 1000 * (k + 1);
    cs.generations.push_back(std::move(st));
  }

  stack.rt.spawnAll([&cs](Comm world) -> Task<> {
    if (cs.cfg.strategy.kind == StrategyKind::kRbIo)
      co_await campaignRbIoRank(world, cs);
    else
      co_await campaignBlockingRank(world, cs);
  });
  stack.sched.run();
  if (stack.sched.liveRoots() != 0)
    throw std::runtime_error("campaign deadlocked");

  CampaignResult result;
  result.totalSeconds =
      *std::max_element(cs.rankEnd.begin(), cs.rankEnd.end());
  result.computeSeconds = cfg.steps * cfg.computeStepSeconds;
  result.ioOverheadSeconds = result.totalSeconds - result.computeSeconds;
  result.checkpointsTaken = numCkpts;
  return result;
}

}  // namespace bgckpt::iolib
