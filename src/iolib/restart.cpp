#include "iolib/restart.hpp"

#include <algorithm>
#include <stdexcept>

#include "iolib/layout.hpp"

namespace bgckpt::iolib {

namespace {

using mpi::Comm;
using sim::Task;

constexpr int kScatterTag = 88;

struct RestartState {
  CheckpointSpec spec;
  RestartConfig cfg;
  SimStack* stack = nullptr;
  std::vector<double> perRank;
};

Task<> directRead(Comm world, RestartState& st) {
  auto& fsys = st.stack->fsys;
  const int rank = world.rank();
  const int client = world.globalRank(rank);
  const int part = rank / st.cfg.groupSize;
  const int local = rank % st.cfg.groupSize;
  GroupFileLayout layout(st.spec, st.cfg.groupSize);

  auto fh = co_await fsys.open(client, checkpointPath(st.spec, part));
  // Header (every reader needs the offset table), then its field blocks.
  co_await fsys.read(client, fh, 0, st.spec.headerBytes);
  for (int f = 0; f < st.spec.numFields; ++f)
    co_await fsys.read(client, fh, layout.fieldOffset(f, local),
                       st.spec.fieldBytesPerRank);
  co_await fsys.close(client, fh);
}

Task<> leaderScatter(Comm world, RestartState& st) {
  auto& fsys = st.stack->fsys;
  const int rank = world.rank();
  const int g = st.cfg.groupSize;
  const int part = rank / g;
  const bool isLeader = rank % g == 0;
  GroupFileLayout layout(st.spec, g);

  if (isLeader) {
    const int client = world.globalRank(rank);
    auto fh = co_await fsys.open(client, checkpointPath(st.spec, part));
    co_await fsys.read(client, fh, 0, layout.fileBytes());  // sequential
    co_await fsys.close(client, fh);
    // Scatter each member's package over the torus.
    for (int member = 1; member < g; ++member) {
      mpi::Request req = co_await world.isend(
          part * g + member, kScatterTag,
          mpi::Message::ofSize(st.spec.bytesPerRank()));
      (void)req;  // receivers bound completion
    }
  } else {
    co_await world.recv(part * g, kScatterTag);
  }
}

Task<> rankProgram(Comm world, RestartState& st) {
  co_await world.barrier();
  const double start = world.scheduler().now();
  if (st.cfg.mode == RestartMode::kDirect)
    co_await directRead(world, st);
  else
    co_await leaderScatter(world, st);
  st.perRank[static_cast<std::size_t>(world.rank())] =
      world.scheduler().now() - start;
}

}  // namespace

RestartResult runRestart(SimStack& stack, const CheckpointSpec& spec,
                         const RestartConfig& cfg) {
  const int np = stack.rt.numRanks();
  if (cfg.groupSize < 1 || np % cfg.groupSize != 0)
    throw std::invalid_argument("restart: groupSize must divide np");
  const int parts = np / cfg.groupSize;
  for (int part = 0; part < parts; ++part)
    if (!stack.fsys.image().exists(checkpointPath(spec, part)))
      throw std::runtime_error("restart: missing checkpoint part " +
                               checkpointPath(spec, part));

  RestartState st;
  st.spec = spec;
  st.cfg = cfg;
  st.stack = &stack;
  st.perRank.assign(static_cast<std::size_t>(np), 0.0);

  stack.rt.spawnAll(
      [&st](Comm world) -> Task<> { co_await rankProgram(world, st); });
  stack.sched.run();
  if (stack.sched.liveRoots() != 0)
    throw std::runtime_error("restart run deadlocked");

  RestartResult result;
  result.perRankTime = st.perRank;
  result.makespan = *std::max_element(st.perRank.begin(), st.perRank.end());
  result.logicalBytes =
      static_cast<sim::Bytes>(np) * spec.bytesPerRank() +
      static_cast<sim::Bytes>(parts) * spec.headerBytes;
  result.bandwidth =
      static_cast<double>(result.logicalBytes) / result.makespan;
  return result;
}

}  // namespace bgckpt::iolib
