// Restart: reading a checkpoint back into the job (simulated backend).
//
// The paper's case for application-level checkpointing rests on these files
// being restartable and portable. Two read strategies are provided:
//
//  * kDirect        every rank opens its part file and reads its own field
//                   blocks (strided reads; metadata-heavy at scale);
//  * kLeaderScatter one leader per part file reads it sequentially and
//                   scatters blocks to the group over the torus — the
//                   read-side mirror of rbIO.
#pragma once

#include "iolib/spec.hpp"
#include "iolib/stack.hpp"

namespace bgckpt::iolib {

enum class RestartMode { kDirect, kLeaderScatter };

struct RestartConfig {
  RestartMode mode = RestartMode::kLeaderScatter;
  /// Ranks per checkpoint part file (must match how it was written:
  /// 1 for 1PFPP output, the group size for coIO/rbIO output).
  int groupSize = 64;
};

struct RestartResult {
  double makespan = 0;
  double bandwidth = 0;        ///< logical bytes / makespan
  sim::Bytes logicalBytes = 0;
  std::vector<double> perRankTime;
};

/// Read the checkpoint described by `spec` back into all ranks. The files
/// must exist in the stack's filesystem image (written by a prior
/// runCheckpoint with a matching layout).
RestartResult runRestart(SimStack& stack, const CheckpointSpec& spec,
                         const RestartConfig& cfg);

}  // namespace bgckpt::iolib
