// File layout and payload pattern shared by all strategies.
//
// Within one output file holding a group of `groupSize` ranks, data is
// field-major (all ranks' field 0, then field 1, ...) so that grid-point
// numbering stays consistent in file scope — the constraint that forces
// nf=1 writers to commit each field before the next (Section V-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "iolib/spec.hpp"

namespace bgckpt::iolib {

class GroupFileLayout {
 public:
  /// Holds a copy of the spec, so temporaries are safe to pass.
  GroupFileLayout(CheckpointSpec spec, int groupSize)
      : spec_(std::move(spec)), groupSize_(groupSize) {}

  int groupSize() const { return groupSize_; }
  sim::Bytes headerBytes() const { return spec_.headerBytes; }
  sim::Bytes fieldBytes() const { return spec_.fieldBytesPerRank; }

  /// Offset of `rankInGroup`'s block of `field` within the file.
  std::uint64_t fieldOffset(int field, int rankInGroup) const {
    return spec_.headerBytes +
           (static_cast<std::uint64_t>(field) *
                static_cast<std::uint64_t>(groupSize_) +
            static_cast<std::uint64_t>(rankInGroup)) *
               spec_.fieldBytesPerRank;
  }

  /// Start of a whole field section (all group ranks).
  std::uint64_t fieldSectionOffset(int field) const {
    return fieldOffset(field, 0);
  }
  sim::Bytes fieldSectionBytes() const {
    return static_cast<sim::Bytes>(groupSize_) * spec_.fieldBytesPerRank;
  }

  sim::Bytes fileBytes() const {
    return spec_.headerBytes +
           static_cast<sim::Bytes>(spec_.numFields) * fieldSectionBytes();
  }

 private:
  CheckpointSpec spec_;
  int groupSize_;
};

/// Output file path for part `part` of step `spec.step`.
std::string checkpointPath(const CheckpointSpec& spec, int part);

/// Deterministic content byte for (rank, field, index) — lets every
/// strategy generate identical logical data so file images can be compared
/// byte for byte.
inline std::byte patternByte(int globalRank, int field, std::uint64_t index) {
  const auto x = static_cast<std::uint64_t>(globalRank) * 2654435761ULL ^
                 static_cast<std::uint64_t>(field) * 40503ULL ^
                 index * 11400714819323198485ULL;
  return static_cast<std::byte>((x >> 32) & 0xff);
}

/// One rank's package: its fields concatenated field-by-field.
std::vector<std::byte> makeRankPayload(const CheckpointSpec& spec,
                                       int globalRank);

/// Header content for a file (small, deterministic).
std::vector<std::byte> makeHeaderPayload(const CheckpointSpec& spec,
                                         int part);

}  // namespace bgckpt::iolib
