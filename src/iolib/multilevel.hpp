// Multilevel checkpointing (SCR-style) — the future-work direction the
// paper's related-work section closes on: "The Scalable Checkpoint Restart
// (SCR) library provides a multi-level checkpointing capability that can
// leverage local node storage ... A current barrier to using SCR is that
// it requires a compute-side OS that is RAM disk capable; the Blue Gene/P
// compute node kernel is not. This barrier will disappear as future
// leadership computing systems provide more full-featured OS capabilities."
//
// This module simulates exactly that future system: level-1 checkpoints go
// to node-local RAM disk (optionally mirrored to a partner node over the
// torus, surviving single-node failures); every `pfsEvery`-th checkpoint
// additionally drains to the parallel filesystem with one of the paper's
// strategies.
#pragma once

#include "iolib/spec.hpp"
#include "iolib/stack.hpp"

namespace bgckpt::iolib {

struct MultilevelConfig {
  /// Node-local RAM-disk bandwidth (shared by the node's ranks).
  sim::Bandwidth localBandwidth = 1.5e9;
  sim::Duration localLatency = 50e-6;
  /// Mirror each local checkpoint to the torus neighbour (+x node), so a
  /// single-node loss is recoverable from level 1.
  bool partnerCopy = true;
  /// Every Nth checkpoint also drains to the PFS (level 2).
  int pfsEvery = 4;
  StrategyConfig pfsStrategy = StrategyConfig::rbIo(64, true);
};

struct MultilevelResult {
  double localMakespan = 0;    ///< level-1 (local [+partner]) time
  double pfsMakespan = 0;      ///< level-2 (PFS) time
  /// Amortised cost per checkpoint over one pfsEvery cycle.
  double amortizedSeconds = 0;
  /// Per-checkpoint speedup of level 1 over going to the PFS every time.
  double level1Speedup = 0;
  /// Amortised speedup of the multilevel scheme over PFS-only.
  double amortizedSpeedup = 0;
};

MultilevelResult runMultilevelCheckpoint(SimStack& stack,
                                         const CheckpointSpec& spec,
                                         const MultilevelConfig& cfg);

}  // namespace bgckpt::iolib
