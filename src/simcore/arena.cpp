#include "simcore/arena.hpp"

#include <cstdlib>

namespace bgckpt::sim {

FrameArena& FrameArena::instance() {
  thread_local FrameArena arena;
  return arena;
}

FrameArena::~FrameArena() {
  for (char* slab : slabs_) ::operator delete(slab);
}

void FrameArena::beginAudit() {
  auditing_ = true;
  auditLive_.clear();
  auditFreed_.clear();
  auditDoubleFrees_ = 0;
}

void FrameArena::endAudit() {
  auditing_ = false;
  auditLive_.clear();
  auditFreed_.clear();
}

void FrameArena::auditOnAllocate(const void* p) {
  auditLive_.insert(p);
  auditFreed_.erase(p);
}

void FrameArena::auditOnDeallocate(const void* p) noexcept {
  if (auditLive_.erase(p) != 0) {
    auditFreed_.insert(p);
  } else if (auditFreed_.count(p) != 0) {
    // Freed while already on the freed list and never reissued: double free.
    ++auditDoubleFrees_;
  }
  // Unknown pointers (allocated before the audit began) free silently.
}

void* FrameArena::allocate(std::size_t bytes) {
  ++stats_.allocs;
  if (bytes == 0) bytes = 1;
  if (BGCKPT_ARENA_PASSTHROUGH) {
    void* p = ::operator new(bytes);
    if (auditing_) auditOnAllocate(p);
    return p;
  }
  const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
  if (cls > kMaxClasses) {
    ++stats_.oversized;
    void* p = ::operator new(bytes);
    if (auditing_) auditOnAllocate(p);
    return p;
  }
  stats_.liveBytes += cls * kGranularity;
  FreeBlock*& head = freeLists_[cls - 1];
  void* p = nullptr;
  if (head != nullptr) {
    ++stats_.poolHits;
    p = head;
    head = head->next;
  } else {
    p = refill(cls);
  }
  if (auditing_) auditOnAllocate(p);
  return p;
}

void FrameArena::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (auditing_) auditOnDeallocate(p);
  if (bytes == 0) bytes = 1;
  if (BGCKPT_ARENA_PASSTHROUGH) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
  if (cls > kMaxClasses) {
    ::operator delete(p);
    return;
  }
  stats_.liveBytes -= cls * kGranularity;
  auto* block = static_cast<FreeBlock*>(p);
  block->next = freeLists_[cls - 1];
  freeLists_[cls - 1] = block;
}

void* FrameArena::refill(std::size_t cls) {
  const std::size_t blockBytes = cls * kGranularity;
  if (slabRemaining_ < blockBytes) {
    // Coroutine frames only require alignment <= __STDCPP_DEFAULT_NEW_ALIGNMENT__
    // through non-aligned operator new, and kGranularity is a multiple of it,
    // so carving the slab at 64-byte boundaries keeps every block aligned.
    char* slab = static_cast<char*>(::operator new(kSlabBytes));
    slabs_.push_back(slab);
    slabCursor_ = slab;
    slabRemaining_ = kSlabBytes;
    stats_.slabBytes += kSlabBytes;
  }
  void* p = slabCursor_;
  slabCursor_ += blockBytes;
  slabRemaining_ -= blockBytes;
  return p;
}

}  // namespace bgckpt::sim
