#include "simcore/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "simcore/simcheck.hpp"

namespace bgckpt::sim {

namespace {
// The process-wide runtime observer (shard.hpp). An atomic pointer, not a
// plain global: installs happen on the main thread while no run is in
// flight, reads happen from run()/parallelFor on any thread.
std::atomic<RuntimeObserver*> gRuntimeObserver{nullptr};
// Process-unique parallelFor region ids for the observer.
std::atomic<std::uint64_t> gParallelForId{0};
}  // namespace

RuntimeObserver* setRuntimeObserver(RuntimeObserver* observer) noexcept {
  return gRuntimeObserver.exchange(observer, std::memory_order_acq_rel);
}

RuntimeObserver* runtimeObserver() noexcept {
  return gRuntimeObserver.load(std::memory_order_acquire);
}

ShardGroup::ShardGroup(const Config& config)
    : lookahead_(config.lookahead) {
  const unsigned s = config.shards == 0 ? 1 : config.shards;
  if (s > 1 && !(lookahead_ > 0.0))
    throw SimulationError(
        "ShardGroup: lookahead must be > 0 with more than one shard "
        "(a zero-lookahead window can never make parallel progress)");
  shards_.resize(s);
  for (unsigned i = 0; i < s; ++i) {
    ShardState& st = shards_[i];
    st.sched = std::make_unique<Scheduler>(config.scheduler);
    st.inbox.reserve(s);
    for (unsigned src = 0; src < s; ++src)
      st.inbox.push_back(std::make_unique<Mailbox>(config.mailboxCapacity));
    st.sendSeq.assign(s, 0);
  }
  threads_ = config.threads;
}

ShardGroup::~ShardGroup() = default;

void ShardGroup::postSetup(unsigned i, std::function<void(Scheduler&)> setup) {
  SIM_CHECK(i < shards_.size(), "postSetup: shard index out of range");
  SIM_CHECK(!ran_, "postSetup after run()");
  shards_[i].setup.push_back(std::move(setup));
}

void ShardGroup::send(unsigned from, unsigned to, Duration delay,
                      std::uint32_t src, std::uint64_t srcSeq,
                      std::function<void()> fn) {
  SIM_CHECK(from < shards_.size() && to < shards_.size(),
            "send: shard index out of range");
  SIM_CHECK(delay >= lookahead_,
            "cross-shard send below the conservative lookahead bound");
  const SimTime when = shards_[from].sched->now() + delay;
  shards_[to].inbox[from]->push(RemoteEvent{when, src, srcSeq, std::move(fn)});
}

void ShardGroup::send(unsigned from, unsigned to, Duration delay,
                      std::function<void()> fn) {
  SIM_CHECK(from < shards_.size() && to < shards_.size(),
            "send: shard index out of range");
  const std::uint64_t seq = shards_[from].sendSeq[to]++;
  send(from, to, delay, from, seq, std::move(fn));
}

void ShardGroup::runSetup(unsigned i) {
  ShardState& st = shards_[i];
  if (prof_) prof_->phaseBegin(WindowPhase::kSetup, i);
  for (auto& fn : st.setup) fn(*st.sched);
  st.setup.clear();
  if (prof_) prof_->phaseEnd(WindowPhase::kSetup, i, 0);
}

void ShardGroup::drainPhase(unsigned i) {
  ShardState& st = shards_[i];
  if (prof_) prof_->phaseBegin(WindowPhase::kDrain, i);
  st.batch.clear();
  for (auto& box : st.inbox) box->drainInto(st.batch);
  // Deterministic merge: equal-time arrivals inject in (when, src, seq)
  // order, so the local sequence numbers they receive — and therefore the
  // in-shard (time, seq) dispatch order — do not depend on which worker
  // thread delivered first.
  std::sort(st.batch.begin(), st.batch.end(),
            [](const RemoteEvent& a, const RemoteEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (RemoteEvent& ev : st.batch)
    st.sched->scheduleCallAt(
        ev.when, std::move(ev.fn),
        WakeEdge{WakeKind::kMessageDeliver, "shard-mailbox"});
  st.delivered += st.batch.size();
  st.nextTime = st.sched->peekNextTime();
  if (prof_) prof_->phaseEnd(WindowPhase::kDrain, i, st.batch.size());
}

void ShardGroup::execPhase(unsigned i, SimTime horizon) {
  ShardState& st = shards_[i];
  if (prof_) prof_->phaseBegin(WindowPhase::kExec, i);
  std::uint64_t ran = 0;
  try {
    ran = st.sched->runBefore(horizon);
    st.eventsRun += ran;
  } catch (...) {
    st.error = std::current_exception();
  }
  if (prof_) prof_->phaseEnd(WindowPhase::kExec, i, ran);
}

bool ShardGroup::computeWindow() {
  if (prof_) prof_->phaseBegin(WindowPhase::kReduce, 0);
  SimTime minNext = std::numeric_limits<SimTime>::infinity();
  bool failed = false;
  for (const ShardState& st : shards_) {
    minNext = std::min(minNext, st.nextTime);
    if (st.error) failed = true;
  }
  // After a drain phase nothing is in flight (every send of the previous
  // window happened before the exec barrier, so the drain saw it), so an
  // all-infinite reduction means global completion.
  const bool finished =
      failed || minNext == std::numeric_limits<SimTime>::infinity();
  if (!finished) {
    horizon_ = minNext + lookahead_;
    ++windows_;
  }
  if (prof_) {
    const unsigned s = shards();
    for (unsigned i = 0; i < s; ++i) nextScratch_[i] = shards_[i].nextTime;
    prof_->phaseEnd(WindowPhase::kReduce, 0, 0);
    prof_->window(windows_, nextScratch_.data(), s, minNext,
                  finished ? minNext : horizon_, finished);
  }
  if (finished) {
    done_ = true;
    return false;
  }
  return true;
}

void ShardGroup::runCooperative() {
  const unsigned s = shards();
  for (unsigned i = 0; i < s; ++i) runSetup(i);
  for (;;) {
    for (unsigned i = 0; i < s; ++i) drainPhase(i);
    if (!computeWindow()) break;
    for (unsigned i = 0; i < s; ++i) execPhase(i, horizon_);
  }
}

void ShardGroup::runThreaded(unsigned threads) {
  const unsigned s = shards();
  // One completion object serves both barrier points per window; it
  // alternates drain-reduce / end-of-exec. Must be noexcept (std::barrier
  // requirement): computeWindow only reduces plain fields.
  bool reducePhase = true;
  auto completion = [this, &reducePhase]() noexcept {
    if (reducePhase) computeWindow();
    reducePhase = !reducePhase;
  };
  std::barrier sync(static_cast<std::ptrdiff_t>(threads), completion);
  auto worker = [this, threads, s, &sync](unsigned t) {
    // Static shard->thread pinning: shard i always executes on worker
    // i % threads, so its coroutine frames live and die in one thread's
    // FrameArena.
    for (unsigned i = t; i < s; i += threads) runSetup(i);
    for (;;) {
      for (unsigned i = t; i < s; i += threads) drainPhase(i);
      if (prof_) prof_->phaseBegin(WindowPhase::kBarrier, t);
      sync.arrive_and_wait();  // completion: computeWindow()
      if (prof_) prof_->phaseEnd(WindowPhase::kBarrier, t, 0);
      if (done_) break;
      const SimTime horizon = horizon_;
      for (unsigned i = t; i < s; i += threads) execPhase(i, horizon);
      if (prof_) prof_->phaseBegin(WindowPhase::kBarrier, t);
      sync.arrive_and_wait();
      if (prof_) prof_->phaseEnd(WindowPhase::kBarrier, t, 0);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& th : pool) th.join();
}

ShardGroup::Stats ShardGroup::run() {
  SIM_CHECK(!ran_, "ShardGroup::run called twice");
  ran_ = true;
  const unsigned s = shards();
  unsigned t = threads_ == 0 ? s : std::min(threads_, s);
  if (RuntimeObserver* ro = runtimeObserver()) {
    prof_ = ro->beginShardRun(ShardRunInfo{s, t <= 1 ? 1u : t, lookahead_});
    if (prof_) nextScratch_.resize(s);
  }
  if (t <= 1) {
    runCooperative();
  } else {
    runThreaded(t);
  }
  Stats stats;
  stats.windows = windows_;
  stats.shardEvents.reserve(s);
  stats.shardDelivered.reserve(s);
  std::exception_ptr firstError;
  std::size_t blockedRoots = 0;
  for (unsigned dst = 0; dst < s; ++dst) {
    ShardState& st = shards_[dst];
    stats.events += st.eventsRun;
    stats.messages += st.delivered;
    stats.shardEvents.push_back(st.eventsRun);
    stats.shardDelivered.push_back(st.delivered);
    for (unsigned src = 0; src < s; ++src) {
      const Mailbox& box = *st.inbox[src];
      stats.overflow += box.overflowed();
      if (box.overflowed() != 0 || box.ringHighWater() != 0)
        stats.channels.push_back(
            Stats::Channel{src, dst, box.overflowed(), box.ringHighWater()});
    }
    if (st.error && !firstError) firstError = st.error;
    blockedRoots += st.sched->liveRoots();
  }
  // (src, dst) order for the report; the loop above produced (dst, src).
  std::sort(stats.channels.begin(), stats.channels.end(),
            [](const Stats::Channel& a, const Stats::Channel& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  if (prof_) {
    prof_->finished(stats);
    prof_ = nullptr;
  }
  if (firstError) std::rethrow_exception(firstError);
  if (blockedRoots > 0)
    throw SimulationError(
        "ShardGroup: all queues and mailboxes drained but " +
        std::to_string(blockedRoots) +
        " root task(s) are still suspended (cross-shard deadlock)");
  return stats;
}

void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t t =
      threads <= 1 ? 1 : std::min<std::size_t>(threads, n);
  RuntimeObserver* const ro = runtimeObserver();
  const std::uint64_t id =
      ro ? gParallelForId.fetch_add(1, std::memory_order_relaxed) : 0;
  if (ro) ro->parallelForBegin(id, n, static_cast<unsigned>(t));
  if (t == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (ro) ro->jobBegin(id, i, 0);
      body(i);
      if (ro) ro->jobEnd(id, i, 0);
    }
    if (ro) ro->parallelForEnd(id);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::exception_ptr> errors(n);
  auto worker = [&](unsigned w) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (ro) ro->jobBegin(id, i, w);
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (ro) ro->jobEnd(id, i, w);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(t);
  for (std::size_t w = 0; w < t; ++w)
    pool.emplace_back(worker, static_cast<unsigned>(w));
  for (std::thread& th : pool) th.join();
  if (ro) ro->parallelForEnd(id);
  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
}

}  // namespace bgckpt::sim
