#include "simcore/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "simcore/simcheck.hpp"

namespace bgckpt::sim {

ShardGroup::ShardGroup(const Config& config)
    : lookahead_(config.lookahead) {
  const unsigned s = config.shards == 0 ? 1 : config.shards;
  if (s > 1 && !(lookahead_ > 0.0))
    throw SimulationError(
        "ShardGroup: lookahead must be > 0 with more than one shard "
        "(a zero-lookahead window can never make parallel progress)");
  shards_.resize(s);
  for (unsigned i = 0; i < s; ++i) {
    ShardState& st = shards_[i];
    st.sched = std::make_unique<Scheduler>(config.scheduler);
    st.inbox.reserve(s);
    for (unsigned src = 0; src < s; ++src)
      st.inbox.push_back(std::make_unique<Mailbox>(config.mailboxCapacity));
    st.sendSeq.assign(s, 0);
  }
  threads_ = config.threads;
}

ShardGroup::~ShardGroup() = default;

void ShardGroup::postSetup(unsigned i, std::function<void(Scheduler&)> setup) {
  SIM_CHECK(i < shards_.size(), "postSetup: shard index out of range");
  SIM_CHECK(!ran_, "postSetup after run()");
  shards_[i].setup.push_back(std::move(setup));
}

void ShardGroup::send(unsigned from, unsigned to, Duration delay,
                      std::uint32_t src, std::uint64_t srcSeq,
                      std::function<void()> fn) {
  SIM_CHECK(from < shards_.size() && to < shards_.size(),
            "send: shard index out of range");
  SIM_CHECK(delay >= lookahead_,
            "cross-shard send below the conservative lookahead bound");
  const SimTime when = shards_[from].sched->now() + delay;
  shards_[to].inbox[from]->push(RemoteEvent{when, src, srcSeq, std::move(fn)});
}

void ShardGroup::send(unsigned from, unsigned to, Duration delay,
                      std::function<void()> fn) {
  SIM_CHECK(from < shards_.size() && to < shards_.size(),
            "send: shard index out of range");
  const std::uint64_t seq = shards_[from].sendSeq[to]++;
  send(from, to, delay, from, seq, std::move(fn));
}

void ShardGroup::runSetup(unsigned i) {
  ShardState& st = shards_[i];
  for (auto& fn : st.setup) fn(*st.sched);
  st.setup.clear();
}

void ShardGroup::drainPhase(unsigned i) {
  ShardState& st = shards_[i];
  st.batch.clear();
  for (auto& box : st.inbox) box->drainInto(st.batch);
  // Deterministic merge: equal-time arrivals inject in (when, src, seq)
  // order, so the local sequence numbers they receive — and therefore the
  // in-shard (time, seq) dispatch order — do not depend on which worker
  // thread delivered first.
  std::sort(st.batch.begin(), st.batch.end(),
            [](const RemoteEvent& a, const RemoteEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (RemoteEvent& ev : st.batch)
    st.sched->scheduleCallAt(
        ev.when, std::move(ev.fn),
        WakeEdge{WakeKind::kMessageDeliver, "shard-mailbox"});
  st.delivered += st.batch.size();
  st.nextTime = st.sched->peekNextTime();
}

void ShardGroup::execPhase(unsigned i, SimTime horizon) {
  ShardState& st = shards_[i];
  try {
    st.eventsRun += st.sched->runBefore(horizon);
  } catch (...) {
    st.error = std::current_exception();
  }
}

bool ShardGroup::computeWindow() {
  SimTime minNext = std::numeric_limits<SimTime>::infinity();
  bool failed = false;
  for (const ShardState& st : shards_) {
    minNext = std::min(minNext, st.nextTime);
    if (st.error) failed = true;
  }
  // After a drain phase nothing is in flight (every send of the previous
  // window happened before the exec barrier, so the drain saw it), so an
  // all-infinite reduction means global completion.
  if (failed || minNext == std::numeric_limits<SimTime>::infinity()) {
    done_ = true;
    return false;
  }
  horizon_ = minNext + lookahead_;
  ++windows_;
  return true;
}

void ShardGroup::runCooperative() {
  const unsigned s = shards();
  for (unsigned i = 0; i < s; ++i) runSetup(i);
  for (;;) {
    for (unsigned i = 0; i < s; ++i) drainPhase(i);
    if (!computeWindow()) break;
    for (unsigned i = 0; i < s; ++i) execPhase(i, horizon_);
  }
}

void ShardGroup::runThreaded(unsigned threads) {
  const unsigned s = shards();
  // One completion object serves both barrier points per window; it
  // alternates drain-reduce / end-of-exec. Must be noexcept (std::barrier
  // requirement): computeWindow only reduces plain fields.
  bool reducePhase = true;
  auto completion = [this, &reducePhase]() noexcept {
    if (reducePhase) computeWindow();
    reducePhase = !reducePhase;
  };
  std::barrier sync(static_cast<std::ptrdiff_t>(threads), completion);
  auto worker = [this, threads, s, &sync](unsigned t) {
    // Static shard->thread pinning: shard i always executes on worker
    // i % threads, so its coroutine frames live and die in one thread's
    // FrameArena.
    for (unsigned i = t; i < s; i += threads) runSetup(i);
    for (;;) {
      for (unsigned i = t; i < s; i += threads) drainPhase(i);
      sync.arrive_and_wait();  // completion: computeWindow()
      if (done_) break;
      const SimTime horizon = horizon_;
      for (unsigned i = t; i < s; i += threads) execPhase(i, horizon);
      sync.arrive_and_wait();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& th : pool) th.join();
}

ShardGroup::Stats ShardGroup::run() {
  SIM_CHECK(!ran_, "ShardGroup::run called twice");
  ran_ = true;
  const unsigned s = shards();
  unsigned t = threads_ == 0 ? s : std::min(threads_, s);
  if (t <= 1) {
    runCooperative();
  } else {
    runThreaded(t);
  }
  Stats stats;
  stats.windows = windows_;
  std::exception_ptr firstError;
  std::size_t blockedRoots = 0;
  for (ShardState& st : shards_) {
    stats.events += st.eventsRun;
    stats.messages += st.delivered;
    for (const auto& box : st.inbox) stats.overflow += box->overflowed();
    if (st.error && !firstError) firstError = st.error;
    blockedRoots += st.sched->liveRoots();
  }
  if (firstError) std::rethrow_exception(firstError);
  if (blockedRoots > 0)
    throw SimulationError(
        "ShardGroup: all queues and mailboxes drained but " +
        std::to_string(blockedRoots) +
        " root task(s) are still suspended (cross-shard deadlock)");
  return stats;
}

void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t t =
      threads <= 1 ? 1 : std::min<std::size_t>(threads, n);
  if (t == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::exception_ptr> errors(n);
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(t);
  for (std::size_t w = 0; w < t; ++w) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
}

}  // namespace bgckpt::sim
