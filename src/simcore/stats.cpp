#include "simcore/stats.hpp"

#include "simcore/simcheck.hpp"

#include <cmath>
#include <numeric>

namespace bgckpt::sim {

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Sample::quantile(double q) const {
  SIM_CHECK(!values_.empty(), "quantile of an empty series");
  SIM_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const auto n = values_.size();
  auto rank = static_cast<std::size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return values_[rank];
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SIM_CHECK(hi > lo && bins > 0, "histogram needs a non-empty range and bins");
}

void FixedHistogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<std::int64_t>(counts_.size()))
    idx = static_cast<std::int64_t>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double FixedHistogram::binLow(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace bgckpt::sim
