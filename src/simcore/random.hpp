// Deterministic random-number streams.
//
// Every stochastic model in the simulator (service-time jitter, background
// noise, Isend overhead, ...) draws from a named `RngStream`. Streams are
// derived from a single campaign seed plus a name, so independent subsystems
// get decorrelated sequences and an entire campaign replays bit-identically
// from one integer.
#pragma once

#include <cstdint>
#include <string_view>

namespace bgckpt::sim {

/// SplitMix64: used to expand seeds; good avalanche, tiny state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a stream name.
constexpr std::uint64_t hashName(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** generator with convenience distributions.
class RngStream {
 public:
  /// Derive a stream from (campaign seed, name, index).
  RngStream(std::uint64_t campaignSeed, std::string_view name,
            std::uint64_t index = 0);

  std::uint64_t nextU64();

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniformInt(std::uint64_t n);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Normal (Box–Muller, no caching so the stream stays replayable
  /// regardless of call interleaving).
  double normal(double mean, double stddev);

  /// Lognormal parameterised by the *target* median and sigma of log.
  double lognormal(double median, double sigmaLog);

  /// Bernoulli trial.
  bool chance(double probability);

 private:
  std::uint64_t s_[4];
};

}  // namespace bgckpt::sim
