#include "simcore/simcheck.hpp"

#include <algorithm>
#include <cstring>

#include "simcore/arena.hpp"
#include "simcore/scheduler.hpp"

namespace bgckpt::sim {

namespace {

const char* baseName(const char* path) {
  if (path == nullptr) return "?";
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

void printViolation(const SimChecker::Violation& v) {
  std::fprintf(stderr, "[simcheck] %s in %s at t=%.9g: %s",
               SimChecker::kindName(v.kind), v.component.c_str(), v.time,
               v.detail.c_str());
  if (!v.file.empty())
    std::fprintf(stderr, " [%s:%d]", v.file.c_str(), v.line);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
}

}  // namespace

const char* SimChecker::kindName(Kind kind) {
  switch (kind) {
    case Kind::kTokenLeak: return "token-leak";
    case Kind::kDoubleRelease: return "double-release";
    case Kind::kPastEvent: return "past-event";
    case Kind::kFrameLeak: return "frame-leak";
    case Kind::kStaleResume: return "stale-resume";
    case Kind::kTieOrderHazard: return "tie-order-hazard";
  }
  return "?";
}

SimChecker::SimChecker(Config config) : cfg_(config) {}

SimChecker::~SimChecker() {
  finalize();
  detach();
  if (auditStarted_) FrameArena::instance().endAudit();
}

void SimChecker::attach(Scheduler& sched) {
  sched_ = &sched;
  sched.setChecker(this);
  if (!auditStarted_) {
    FrameArena::instance().beginAudit();
    auditStarted_ = true;
  }
}

void SimChecker::detach() {
  if (sched_ != nullptr) {
    sched_->setChecker(nullptr);
    sched_ = nullptr;
  }
}

void SimChecker::setReportFn(std::function<void(const Violation&)> fn) {
  reportFn_ = std::move(fn);
}

void SimChecker::report(Violation v, bool fatal) {
  if (v.kind != Kind::kTieOrderHazard) ++hardViolations_;
  violations_.push_back(v);
  printViolation(violations_.back());
  if (reportFn_) reportFn_(violations_.back());
  if (fatal) {
    std::fprintf(stderr,
                 "[simcheck] aborting on %s (set SIM_CHECK=warn to continue "
                 "past violations)\n",
                 kindName(v.kind));
    std::fflush(stderr);
    std::abort();
  }
}

void SimChecker::onSchedule(SimTime now, SimTime eventTime,
                            const std::source_location& loc) {
  if (eventTime >= now) return;
  Violation v;
  v.kind = Kind::kPastEvent;
  v.component = baseName(loc.file_name());
  v.detail = "event scheduled at t=" + std::to_string(eventTime) +
             ", before current time t=" + std::to_string(now) +
             " (simulated time would run backwards)";
  v.file = loc.file_name();
  v.line = static_cast<int>(loc.line());
  v.time = now;
  report(std::move(v), cfg_.abortOnViolation);
}

void SimChecker::onDispatch(SimTime time, SimTime scheduledAt,
                            const char* file, unsigned line) {
  const DispatchRecord cur{time, scheduledAt, file, line};
  const DispatchRecord prev = prev_;
  const bool hadPrev = prevValid_;
  prev_ = cur;
  prevValid_ = true;
  if (!hadPrev || file == nullptr || prev.file == nullptr) return;
  // A hazard needs two dispatches at one timestamp where neither is a
  // zero-delay wakeup (those are causally ordered behind their scheduler)
  // and the scheduling sites differ — i.e. two independent delays collided
  // and only insertion sequence orders them.
  if (cur.time != prev.time) return;
  if (cur.scheduledAt >= cur.time || prev.scheduledAt >= prev.time) return;
  if (prev.line == cur.line && std::strcmp(prev.file, cur.file) == 0) return;
  ++hazards_;
  // Report each distinct (site, site) pair once, normalized by order.
  std::string a = std::string(prev.file) + ":" + std::to_string(prev.line);
  std::string b = std::string(cur.file) + ":" + std::to_string(cur.line);
  if (b < a) std::swap(a, b);
  std::string key = a + "|" + b;
  if (std::find(hazardPairsSeen_.begin(), hazardPairsSeen_.end(), key) !=
      hazardPairsSeen_.end())
    return;
  hazardPairsSeen_.push_back(std::move(key));
  if (hazardPairsSeen_.size() > cfg_.maxHazardReports) return;
  Violation v;
  v.kind = Kind::kTieOrderHazard;
  v.component = std::string(baseName(prev.file)) + "+" + baseName(cur.file);
  v.detail = "dispatch order of " + a + " vs " + b + " at t=" +
             std::to_string(time) +
             " is pinned only by insertion sequence (both scheduled with a "
             "positive delay landing on the same timestamp)";
  v.file = cur.file;
  v.line = static_cast<int>(cur.line);
  v.time = time;
  report(std::move(v), cfg_.hazardsAbort);
}

void SimChecker::onStaleResume(SimTime now, const void* frame) {
  Violation v;
  v.kind = Kind::kStaleResume;
  v.component = "scheduler";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%p", frame);
  v.detail = std::string("coroutine frame ") + buf +
             " resumed after it was freed (double resume or dangling handle)";
  v.time = now;
  report(std::move(v), cfg_.abortOnViolation);
}

void SimChecker::onResourceOverRelease(const char* name,
                                       std::int64_t available,
                                       std::int64_t total,
                                       const std::source_location& loc) {
  Violation v;
  v.kind = Kind::kDoubleRelease;
  v.component = name != nullptr ? name : "resource";
  v.detail = "release() pushed available tokens to " +
             std::to_string(available) + " of total " + std::to_string(total) +
             " (double release)";
  v.file = loc.file_name();
  v.line = static_cast<int>(loc.line());
  v.time = sched_ != nullptr ? sched_->now() : 0.0;
  report(std::move(v), cfg_.abortOnViolation);
}

void SimChecker::onResourceTeardown(const char* name, std::int64_t available,
                                    std::int64_t total, std::size_t waiters) {
  if (available == total && waiters == 0) return;
  Violation v;
  v.kind = Kind::kTokenLeak;
  v.component = name != nullptr ? name : "resource";
  v.detail = "destroyed with " + std::to_string(total - available) + " of " +
             std::to_string(total) + " tokens still held and " +
             std::to_string(waiters) + " waiter(s) queued";
  v.time = sched_ != nullptr ? sched_->now() : 0.0;
  report(std::move(v), cfg_.abortOnViolation);
}

std::uint64_t SimChecker::finalize() {
  if (finalized_) return hardViolations_;
  finalized_ = true;
  FrameArena& arena = FrameArena::instance();
  if (auditStarted_) {
    if (const std::uint64_t doubles = arena.auditDoubleFrees(); doubles > 0) {
      Violation v;
      v.kind = Kind::kFrameLeak;
      v.component = "arena";
      v.detail = std::to_string(doubles) +
                 " coroutine frame(s) deallocated twice";
      v.time = sched_ != nullptr ? sched_->now() : 0.0;
      report(std::move(v), cfg_.abortOnViolation);
    }
    // Pending queued events legitimately pin frames, so only an empty queue
    // makes live frames a leak (a dropped task, or a root stuck forever on
    // a wakeup that cannot come).
    if (sched_ != nullptr && sched_->queueDepth() == 0) {
      const std::size_t live = arena.auditLiveCount();
      if (live > 0) {
        Violation v;
        v.kind = Kind::kFrameLeak;
        v.component = "arena";
        v.detail = std::to_string(live) +
                   " coroutine frame(s) still live at teardown with an empty "
                   "event queue (dropped or permanently blocked coroutine); " +
                   std::to_string(sched_->liveRoots()) +
                   " root task(s) unfinished";
        v.time = sched_->now();
        report(std::move(v), cfg_.abortOnViolation);
      }
    }
  }
  if (hazards_ > 0) {
    std::fprintf(stderr,
                 "[simcheck] %llu equal-timestamp tie-order hazard(s) across "
                 "%zu distinct site pair(s)\n",
                 static_cast<unsigned long long>(hazards_),
                 hazardPairsSeen_.size());
    std::fflush(stderr);
  }
  return hardViolations_;
}

SimCheckMode simCheckModeFromEnv() {
  const char* env = std::getenv("SIM_CHECK");
  if (env == nullptr || *env == '\0') return SimCheckMode::kAuto;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
    return SimCheckMode::kOff;
  if (std::strcmp(env, "warn") == 0) return SimCheckMode::kWarn;
  return SimCheckMode::kOn;
}

}  // namespace bgckpt::sim
