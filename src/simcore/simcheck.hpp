// Runtime invariant checking for the simulator.
//
// Two layers, both reporting component/file/line so a violation in a 64K-rank
// run points at the scheduling or release site instead of a corrupted figure:
//
//  * `SIM_CHECK(cond, msg)` — an always-on assertion for load-bearing
//    simulation-state invariants (token balances, rank bounds, payload
//    sizes). Unlike `assert`, it survives Release builds, so a bench that
//    would silently produce wrong figures aborts loudly instead.
//    `SIM_DCHECK` is the debug-only variant for per-event hot-path
//    invariants whose cost is not acceptable in Release (it still compiles
//    in when `BGCKPT_SIMCHECK_FORCE` is defined).
//
//  * `SimChecker` — an opt-in validation layer (debug-default in
//    iolib::SimStack, `--simcheck` in benches, `SIM_CHECK=1` in the
//    environment) that watches a Scheduler and the coroutine FrameArena for
//    whole classes of silent-corruption hazards:
//      - resource-token leaks and double-releases (checked at every release
//        and at each Resource teardown),
//      - events scheduled in the past (time would run backwards),
//      - coroutine frames leaked / never completed (arena audit), or
//        resumed after their frame was freed,
//      - equal-timestamp tie-order hazards: two dispatches at the same
//        timestamp from different scheduling sites, where both were
//        scheduled with a positive delay. Their relative order is pinned
//        only by insertion sequence, so those are exactly the places where
//        a future queue change would silently reorder the simulation and
//        change figures. Hazards are advisory by default (counted and
//        reported once per site pair); `Config::hazardsAbort` promotes them.
//
// Violations go through a pluggable report function (stderr by default; the
// obs layer installs a trace-sink adapter) and abort the process when
// `Config::abortOnViolation` is set.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <source_location>
#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace bgckpt::sim {

class Scheduler;

namespace detail {

[[noreturn]] inline void simCheckFail(const char* expr, const char* msg,
                                      const char* file, int line) {
  std::fprintf(stderr, "SIM_CHECK failed: %s — %s [%s:%d]\n", expr, msg, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail

}  // namespace bgckpt::sim

/// Always-on invariant check: aborts with expression, message and site on
/// failure, in every build type. Use for simulation-state invariants whose
/// silent failure would corrupt results.
#define SIM_CHECK(cond, msg)                                              \
  (static_cast<bool>(cond)                                                \
       ? static_cast<void>(0)                                             \
       : ::bgckpt::sim::detail::simCheckFail(#cond, msg, __FILE__, __LINE__))

/// Debug-only variant for hot-path invariants (per-event scheduler/queue
/// internals). Compiled out under NDEBUG unless BGCKPT_SIMCHECK_FORCE.
#if !defined(NDEBUG) || defined(BGCKPT_SIMCHECK_FORCE)
#define SIM_DCHECK(cond, msg) SIM_CHECK(cond, msg)
#else
#define SIM_DCHECK(cond, msg) static_cast<void>(0)
#endif

namespace bgckpt::sim {

class SimChecker {
 public:
  enum class Kind {
    kTokenLeak,      // Resource destroyed with tokens outstanding / waiters
    kDoubleRelease,  // release() pushed a Resource above its total
    kPastEvent,      // event scheduled before the current simulated time
    kFrameLeak,      // coroutine frames still live at teardown
    kStaleResume,    // handle resumed after its frame was freed
    kTieOrderHazard, // equal-timestamp dispatches from different sites
  };
  static const char* kindName(Kind kind);

  struct Violation {
    Kind kind;
    std::string component;  // resource name, "scheduler", "arena", basename
    std::string detail;
    std::string file;  // attribution site ("" when not applicable)
    int line = 0;
    SimTime time = 0.0;
  };

  struct Config {
    /// Abort the process on any hard violation (leak/double-release/past
    /// event/frame leak/stale resume). Off lets tests inspect violations().
    bool abortOnViolation = true;
    /// Treat tie-order hazards as hard violations instead of advisories.
    bool hazardsAbort = false;
    /// Report at most this many distinct hazard site pairs (all are counted).
    std::size_t maxHazardReports = 16;
  };

  SimChecker() : SimChecker(Config{}) {}
  explicit SimChecker(Config config);
  SimChecker(const SimChecker&) = delete;
  SimChecker& operator=(const SimChecker&) = delete;
  /// Detaches, runs finalize() if it has not run, and ends the arena audit.
  ~SimChecker();

  /// Install this checker on `sched` and begin the frame-arena audit.
  void attach(Scheduler& sched);
  /// Clear the scheduler's checker pointer (finalize() still works).
  void detach();

  /// Install an additional violation mirror (the stderr report always
  /// happens first). iolib::SimStack uses this to reflect violations into
  /// the obs metrics/trace stream. Pass an empty function to remove it.
  void setReportFn(std::function<void(const Violation&)> fn);

  /// Teardown-time checks (frame leaks, double frees) plus the hazard
  /// summary. Idempotent. Returns the number of hard violations recorded
  /// over the checker's lifetime so far.
  std::uint64_t finalize();

  const std::vector<Violation>& violations() const { return violations_; }
  /// Hard (non-hazard) violations recorded.
  std::uint64_t violationCount() const { return hardViolations_; }
  /// Total equal-timestamp tie-order hazards observed (including deduped).
  std::uint64_t hazardCount() const { return hazards_; }

  // ------------------------------------------------------------------------
  // Producer entry points (called by Scheduler / Resource / arena wiring).
  void onSchedule(SimTime now, SimTime eventTime,
                  const std::source_location& loc);
  void onDispatch(SimTime time, SimTime scheduledAt, const char* file,
                  unsigned line);
  void onStaleResume(SimTime now, const void* frame);
  void onResourceOverRelease(const char* name, std::int64_t available,
                             std::int64_t total,
                             const std::source_location& loc);
  void onResourceTeardown(const char* name, std::int64_t available,
                          std::int64_t total, std::size_t waiters);

 private:
  void report(Violation v, bool fatal);

  Config cfg_;
  Scheduler* sched_ = nullptr;
  std::vector<Violation> violations_;
  std::uint64_t hardViolations_ = 0;
  std::uint64_t hazards_ = 0;
  std::vector<std::string> hazardPairsSeen_;  // normalized "a:1|b:2" keys
  bool finalized_ = false;
  bool auditStarted_ = false;

  struct DispatchRecord {
    SimTime time = 0.0;
    SimTime scheduledAt = 0.0;
    const char* file = nullptr;
    unsigned line = 0;
  };
  DispatchRecord prev_;
  bool prevValid_ = false;

  std::function<void(const Violation&)> reportFn_;
};

/// Parse the SIM_CHECK environment variable (used by iolib::SimStack):
///   unset     -> enabled in debug builds (abort mode), off in release
///   0|off     -> disabled everywhere
///   1|on|abort-> enabled everywhere, abort on violation
///   warn      -> enabled everywhere, report but never abort
enum class SimCheckMode { kAuto, kOff, kOn, kWarn };
SimCheckMode simCheckModeFromEnv();

}  // namespace bgckpt::sim
