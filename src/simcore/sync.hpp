// Higher-level synchronisation built on the scheduler: one-shot gates,
// cyclic barriers, and wait groups (fork/join counters).
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

#include "simcore/scheduler.hpp"
#include "simcore/simcheck.hpp"

namespace bgckpt::sim {

/// One-shot event: waiters suspend until `fire()`; waits after firing
/// complete immediately. Cannot be reset.
class Gate {
 public:
  explicit Gate(Scheduler& sched) : sched_(sched) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_)
      sched_.scheduleResume(0.0, h, WakeEdge{WakeKind::kGateFire, "gate"});
    waiters_.clear();
  }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const { return gate.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Scheduler& sched_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier for `parties` processes. The last arrival releases all and
/// the barrier resets for the next round.
class Barrier {
 public:
  Barrier(Scheduler& sched, std::size_t parties)
      : sched_(sched), parties_(parties) {
    SIM_CHECK(parties > 0, "Barrier needs at least one party");
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  std::size_t parties() const { return parties_; }
  std::size_t arrived() const { return waiters_.size(); }

  [[nodiscard]] auto arriveAndWait() {
    struct Awaiter {
      Barrier& bar;
      bool await_ready() {
        // The final arrival does not suspend; it releases everyone before
        // proceeding, which also resets the barrier for the next round.
        if (bar.waiters_.size() + 1 == bar.parties_) {
          bar.releaseAll();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        bar.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  void releaseAll() {
    for (auto h : waiters_)
      sched_.scheduleResume(0.0, h,
                            WakeEdge{WakeKind::kBarrierRelease, "barrier"});
    waiters_.clear();
  }

  Scheduler& sched_;
  std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Fork/join counter: `add()` before spawning work, `done()` when each piece
/// finishes, `wait()` suspends until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& sched) : gate_(sched) {}

  void add(std::size_t n = 1) {
    SIM_CHECK(!gate_.fired(), "WaitGroup reused after completion");
    count_ += n;
  }

  void done() {
    SIM_CHECK(count_ > 0, "WaitGroup::done without a matching add");
    if (--count_ == 0) gate_.fire();
  }

  [[nodiscard]] auto wait() {
    if (count_ == 0) gate_.fire();
    return gate_.wait();
  }

  std::size_t pending() const { return count_; }

 private:
  Gate gate_;
  std::size_t count_ = 0;
};

}  // namespace bgckpt::sim
