#include "simcore/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "simcore/arena.hpp"
#include "simcore/simcheck.hpp"

namespace bgckpt::sim {

// Detached driver coroutine that owns a root Task for its whole lifetime and
// reports completion/failure back to the scheduler. It starts suspended so
// that spawn() can enqueue its first resume through the event queue (spawn
// order == first-run order); its frame self-destructs at final_suspend
// (suspend_never), by which point the owned Task local has been destroyed.
struct [[nodiscard]] RootRunner {
  struct promise_type : detail::FrameArenaAllocated {
    RootRunner get_return_object() {
      return RootRunner{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };

  [[nodiscard]] static RootRunner drive(Scheduler& sched, Task<> task,
                                        std::uint64_t id) {
    try {
      co_await std::move(task);
      sched.noteRootDone(id);
    } catch (...) {
      sched.noteRootFailed(id, std::current_exception());
    }
  }

  std::coroutine_handle<> handle;
};

Scheduler::Scheduler(const Config& config)
    : buckets_(kBuckets), legacy_(config.legacyQueue) {
  if (config.expectedEvents > 0) reserve(config.expectedEvents);
}

void Scheduler::reserve(std::size_t expectedEvents) {
  if (legacy_) return;  // the reference path keeps its textbook layout
  pool_.reserve(expectedEvents);
  far_.reserve(expectedEvents);
  nowQ_.reserve(std::min<std::size_t>(expectedEvents, 1u << 16));
}

// ------------------------------------------------------------ event pool --

std::uint32_t Scheduler::allocNode() {
  if (freeHead_ != kNil) {
    const std::uint32_t idx = freeHead_;
    freeHead_ = pool_[idx].nextFree;
    return idx;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Scheduler::freeNode(std::uint32_t idx) {
  EventNode& n = pool_[idx];
  n.handle = {};
  n.callback = nullptr;  // drop captures promptly
  n.nextFree = freeHead_;
  freeHead_ = idx;
}

// --------------------------------------------------------------- routing --

void Scheduler::pushIndex(std::uint32_t idx) {
  const SimTime t = pool_[idx].time;
  ++size_;
  if (t <= now_) {
    // Zero-delay wakeup: by far the most common event. All entries share
    // time == now_ and arrive in seq order, so a plain FIFO suffices.
    nowQ_.push_back(idx);
    return;
  }
  if (bucketWidth_ > 0.0 && t < windowEnd_) {
    pushRing(idx, t);
    return;
  }
  if (far_.empty()) {
    farMin_ = t;
    farMax_ = t;
  } else {
    if (t < farMin_) farMin_ = t;
    if (t > farMax_) farMax_ = t;
  }
  far_.push_back(FarEntry{t, pool_[idx].seq, idx});
}

void Scheduler::pushRing(std::uint32_t idx, SimTime t) {
  // Map to a bucket, clamped into [activeBucket_, kBuckets). Times that
  // land in an already-drained bucket (or below windowLo_ after a runUntil
  // fast-forward) clamp up to the active bucket; the activation sort puts
  // them in their correct (time, seq) slot, and every event in later
  // buckets is provably later, so global order is preserved.
  double raw = (t - windowLo_) / bucketWidth_;
  std::size_t i = raw <= 0.0 ? 0 : static_cast<std::size_t>(raw);
  if (i >= kBuckets) i = kBuckets - 1;  // fp rounding at the window edge
  if (i < activeBucket_) i = activeBucket_;
  if (i == activeBucket_ && activeSorted_) {
    // The active bucket is already sorted and partially drained. Delays
    // shorter than one bucket width land here constantly, so a sorted
    // middle-insert would be O(bucket) memmove per push; a small side heap
    // keeps this O(log n). popReady() merges it with the bucket head.
    near_.push_back(FarEntry{t, pool_[idx].seq, idx});
    std::push_heap(near_.begin(), near_.end(), FarLater{});
    return;
  }
  buckets_[i].push_back(FarEntry{t, pool_[idx].seq, idx});
  ++ringCount_;
}

void Scheduler::setChecker(SimChecker* check) {
  check_ = check;
  if (check_ != nullptr && meta_.size() < pool_.size())
    meta_.resize(pool_.size());
}

void Scheduler::prepareActiveBucket() {
  SIM_DCHECK(ringCount_ > 0, "prepareActiveBucket on an empty ring");
  while (drainPos_ >= buckets_[activeBucket_].size()) {
    buckets_[activeBucket_].clear();
    drainPos_ = 0;
    activeSorted_ = false;
    ++activeBucket_;
    SIM_DCHECK(activeBucket_ < kBuckets, "ringCount_ out of sync");
  }
  if (!activeSorted_) {
    std::vector<FarEntry>& bucket = buckets_[activeBucket_];
    std::sort(bucket.begin(), bucket.end(), FarEarlier{});
    activeSorted_ = true;
  }
}

void Scheduler::refillFromFar() {
  SIM_DCHECK(!far_.empty(), "refill with no far-pool events");
  const SimTime t0 = farMin_;
  // Size the window from the observed spread so a typical bucket holds a
  // handful of events. The window spans half the spread, so even when the
  // far pool's mass sits near farMax_, each refill at least halves the
  // remaining time range — the rescans shrink geometrically.
  const double spread = std::max(farMax_ - t0, 0.0);
  double width = spread > 0.0 ? spread / static_cast<double>(kBuckets * 2)
                              : 1.0;
  // Keep the window strictly wider than fp granularity at t0 so
  // windowEnd_ > windowLo_ always holds.
  width = std::max(width, std::max(std::abs(t0) * 1e-14, 1e-12));
  windowLo_ = t0;
  bucketWidth_ = width;
  windowEnd_ = windowLo_ + static_cast<double>(kBuckets) * width;
  activeBucket_ = 0;
  drainPos_ = 0;
  activeSorted_ = false;
  // One partition pass: everything inside the window goes to its bucket
  // (farMin_ == t0 guarantees at least one entry moves), the rest compacts
  // in place with fresh exact bounds.
  SimTime newMin = 0.0;
  SimTime newMax = 0.0;
  std::size_t keep = 0;
  for (std::size_t k = 0; k < far_.size(); ++k) {
    const FarEntry e = far_[k];
    if (e.time < windowEnd_) {
      double raw = (e.time - windowLo_) / bucketWidth_;
      std::size_t i = raw <= 0.0 ? 0 : static_cast<std::size_t>(raw);
      if (i >= kBuckets) i = kBuckets - 1;
      buckets_[i].push_back(e);
      ++ringCount_;
    } else {
      if (keep == 0 || e.time < newMin) newMin = e.time;
      if (keep == 0 || e.time > newMax) newMax = e.time;
      far_[keep++] = e;
    }
  }
  far_.resize(keep);
  farMin_ = newMin;
  farMax_ = newMax;
}

void Scheduler::popRing() {
  ++drainPos_;
  --ringCount_;
  if (drainPos_ == buckets_[activeBucket_].size()) {
    buckets_[activeBucket_].clear();
    drainPos_ = 0;
    activeSorted_ = false;
  }
}

void Scheduler::popNear() {
  std::pop_heap(near_.begin(), near_.end(), FarLater{});
  near_.pop_back();
}

std::uint32_t Scheduler::popReady() {
  SIM_DCHECK(size_ > 0, "pop from an empty event queue");
  --size_;
  // Merge the three future tiers: sorted-bucket head, near heap, now FIFO.
  // (The far heap never competes: its times are >= windowEnd_, strictly
  // beyond everything in the ring or near heap.)
  int src = 0;  // 0 none, 1 ring, 2 near
  std::uint32_t cIdx = kNil;
  SimTime cTime = 0.0;
  std::uint64_t cSeq = 0;
  if (ringCount_ > 0) {
    prepareActiveBucket();
    const FarEntry& e = buckets_[activeBucket_][drainPos_];
    cIdx = e.idx;
    cTime = e.time;
    cSeq = e.seq;
    src = 1;
  }
  if (!near_.empty()) {
    const FarEntry& e = near_.front();
    if (src == 0 || e.time < cTime || (e.time == cTime && e.seq < cSeq)) {
      cIdx = e.idx;
      cTime = e.time;
      cSeq = e.seq;
      src = 2;
    }
  }
  if (nowHead_ < nowQ_.size()) {
    // FIFO entries share time == now_; ring/near can hold an equal-time
    // event with a smaller seq (scheduled earlier, for what was then the
    // future) which must go first.
    const std::uint32_t nIdx = nowQ_[nowHead_];
    const EventNode& nn = pool_[nIdx];
    if (src == 0 || nn.time < cTime || (nn.time == cTime && nn.seq < cSeq)) {
      ++nowHead_;
      if (nowHead_ == nowQ_.size()) {
        nowQ_.clear();
        nowHead_ = 0;
      }
      return nIdx;
    }
  } else if (src == 0) {
    refillFromFar();
    prepareActiveBucket();
    cIdx = buckets_[activeBucket_][drainPos_].idx;
    src = 1;
  }
  if (src == 1) {
    popRing();
  } else {
    popNear();
  }
  return cIdx;
}

SimTime Scheduler::nextEventTime() {
  if (nowHead_ < nowQ_.size()) return now_;
  SimTime t = std::numeric_limits<SimTime>::infinity();
  if (ringCount_ > 0) {
    prepareActiveBucket();
    t = buckets_[activeBucket_][drainPos_].time;
  }
  if (!near_.empty() && near_.front().time < t) t = near_.front().time;
  if (t != std::numeric_limits<SimTime>::infinity()) return t;
  if (!far_.empty()) return farMin_;
  return std::numeric_limits<SimTime>::infinity();
}

// -------------------------------------------------------------- dispatch --

const char* wakeKindName(WakeKind kind) {
  switch (kind) {
    case WakeKind::kDelay: return "delay";
    case WakeKind::kSpawn: return "spawn";
    case WakeKind::kResourceGrant: return "resource_grant";
    case WakeKind::kGateFire: return "gate_fire";
    case WakeKind::kBarrierRelease: return "barrier_release";
    case WakeKind::kChannelPush: return "channel_push";
    case WakeKind::kMessageDeliver: return "message_deliver";
    case WakeKind::kCallback: return "callback";
  }
  return "?";
}

void Scheduler::scheduleResume(Duration delayTime, std::coroutine_handle<> h,
                               WakeEdge edge, std::source_location loc) {
  const SimTime t = now_ + delayTime;
  const std::uint64_t seq = nextSeq_++;
  if (check_) check_->onSchedule(now_, t, loc);
  if (hooksWantSchedule_)
    hooks_->onEventScheduled(
        seq, dispatchingSeq_, t, edge.kind,
        edge.label != nullptr ? edge.label : loc.file_name());
  if (legacy_) {
    legacyQueue_.push(LegacyEvent{
        t, seq, h, nullptr,
        EventMeta{now_, loc.file_name(), loc.line()}});
    return;
  }
  const std::uint32_t idx = allocNode();
  EventNode& n = pool_[idx];
  n.time = t;
  n.seq = seq;
  n.handle = h;
  if (check_) {
    if (meta_.size() < pool_.size()) meta_.resize(pool_.size());
    meta_[idx] = EventMeta{now_, loc.file_name(), loc.line()};
  }
  pushIndex(idx);
}

void Scheduler::scheduleCallAt(SimTime when, std::function<void()> fn,
                               WakeEdge edge, std::source_location loc) {
  SIM_CHECK(when >= now_, "scheduleCallAt into the past");
  scheduleAt(when, std::move(fn), edge, loc);
}

void Scheduler::scheduleCall(Duration delayTime, std::function<void()> fn,
                             WakeEdge edge, std::source_location loc) {
  scheduleAt(now_ + delayTime, std::move(fn), edge, loc);
}

void Scheduler::scheduleAt(SimTime t, std::function<void()> fn, WakeEdge edge,
                           std::source_location loc) {
  const std::uint64_t seq = nextSeq_++;
  if (check_) check_->onSchedule(now_, t, loc);
  if (hooksWantSchedule_)
    hooks_->onEventScheduled(
        seq, dispatchingSeq_, t, edge.kind,
        edge.label != nullptr ? edge.label : loc.file_name());
  if (legacy_) {
    legacyQueue_.push(LegacyEvent{
        t, seq, nullptr, std::move(fn),
        EventMeta{now_, loc.file_name(), loc.line()}});
    return;
  }
  const std::uint32_t idx = allocNode();
  EventNode& n = pool_[idx];
  n.time = t;
  n.seq = seq;
  n.handle = nullptr;
  n.callback = std::move(fn);
  if (check_) {
    if (meta_.size() < pool_.size()) meta_.resize(pool_.size());
    meta_[idx] = EventMeta{now_, loc.file_name(), loc.line()};
  }
  pushIndex(idx);
}

void Scheduler::spawn(Task<> task) {
  ++liveRoots_;
  const std::uint64_t id = nextRootId_++;
  if (hooks_) hooks_->onRootSpawned(id, now_);
  RootRunner runner = RootRunner::drive(*this, std::move(task), id);
  scheduleResume(0.0, runner.handle, WakeEdge{WakeKind::kSpawn, "spawn"});
}

void Scheduler::step() {
  const std::uint32_t idx = popReady();
  EventNode& n = pool_[idx];
  now_ = n.time;
  dispatchingSeq_ = n.seq;
  const std::coroutine_handle<> h = n.handle;
  std::function<void()> cb;
  if (!h) cb = std::move(n.callback);
  if (check_) {
    const EventMeta meta = idx < meta_.size() ? meta_[idx] : EventMeta{};
    check_->onDispatch(now_, meta.scheduledAt, meta.file, meta.line);
    if (h && FrameArena::instance().pointerState(h.address()) ==
                 FrameArena::PointerState::kFreed)
      check_->onStaleResume(now_, h.address());
  }
  // Recycle the slot before dispatching so events scheduled from inside the
  // handler reuse it.
  freeNode(idx);
  ++eventsProcessed_;
  if (h) {
    h.resume();
  } else {
    cb();
  }
  dispatchingSeq_ = SchedulerHooks::kNoParent;
  if (hooks_) hooks_->onDispatch(now_, size_);
}

void Scheduler::stepLegacy() {
  LegacyEvent ev = legacyQueue_.top();
  legacyQueue_.pop();
  now_ = ev.time;
  dispatchingSeq_ = ev.seq;
  if (check_) {
    check_->onDispatch(now_, ev.meta.scheduledAt, ev.meta.file, ev.meta.line);
    if (ev.handle && FrameArena::instance().pointerState(ev.handle.address()) ==
                         FrameArena::PointerState::kFreed)
      check_->onStaleResume(now_, ev.handle.address());
  }
  ++eventsProcessed_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.callback();
  }
  dispatchingSeq_ = SchedulerHooks::kNoParent;
  if (hooks_) hooks_->onDispatch(now_, legacyQueue_.size());
}

std::uint64_t Scheduler::run() {
  const std::uint64_t before = eventsProcessed_;
  if (legacy_) {
    while (!legacyQueue_.empty()) {
      stepLegacy();
      if (firstError_) break;
    }
  } else {
    while (size_ > 0) {
      step();
      if (firstError_) break;
    }
  }
  if (firstError_) {
    auto ep = std::exchange(firstError_, nullptr);
    std::rethrow_exception(ep);
  }
  return eventsProcessed_ - before;
}

SimTime Scheduler::peekNextTime() {
  if (legacy_)
    return legacyQueue_.empty() ? std::numeric_limits<SimTime>::infinity()
                                : legacyQueue_.top().time;
  if (size_ == 0) return std::numeric_limits<SimTime>::infinity();
  return nextEventTime();
}

std::uint64_t Scheduler::runBefore(SimTime horizon) {
  const std::uint64_t before = eventsProcessed_;
  if (legacy_) {
    while (!legacyQueue_.empty() && legacyQueue_.top().time < horizon) {
      stepLegacy();
      if (firstError_) break;
    }
  } else {
    while (size_ > 0 && nextEventTime() < horizon) {
      step();
      if (firstError_) break;
    }
  }
  if (firstError_) {
    auto ep = std::exchange(firstError_, nullptr);
    std::rethrow_exception(ep);
  }
  return eventsProcessed_ - before;
}

std::uint64_t Scheduler::runUntil(SimTime untilTime) {
  const std::uint64_t before = eventsProcessed_;
  if (legacy_) {
    while (!legacyQueue_.empty() && legacyQueue_.top().time <= untilTime) {
      stepLegacy();
      if (firstError_) break;
    }
  } else {
    while (size_ > 0 && nextEventTime() <= untilTime) {
      step();
      if (firstError_) break;
    }
  }
  if (now_ < untilTime) now_ = untilTime;
  if (firstError_) {
    auto ep = std::exchange(firstError_, nullptr);
    std::rethrow_exception(ep);
  }
  return eventsProcessed_ - before;
}

}  // namespace bgckpt::sim
