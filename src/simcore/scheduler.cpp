#include "simcore/scheduler.hpp"

#include <utility>

namespace bgckpt::sim {

// Detached driver coroutine that owns a root Task for its whole lifetime and
// reports completion/failure back to the scheduler. It starts suspended so
// that spawn() can enqueue its first resume through the event queue (spawn
// order == first-run order); its frame self-destructs at final_suspend
// (suspend_never), by which point the owned Task local has been destroyed.
struct RootRunner {
  struct promise_type {
    RootRunner get_return_object() {
      return RootRunner{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };

  static RootRunner drive(Scheduler& sched, Task<> task, std::uint64_t id) {
    try {
      co_await std::move(task);
      sched.noteRootDone(id);
    } catch (...) {
      sched.noteRootFailed(id, std::current_exception());
    }
  }

  std::coroutine_handle<> handle;
};

void Scheduler::scheduleResume(Duration delayTime, std::coroutine_handle<> h) {
  queue_.push(Event{now_ + delayTime, nextSeq_++, h, nullptr});
}

void Scheduler::scheduleCall(Duration delayTime, std::function<void()> fn) {
  queue_.push(Event{now_ + delayTime, nextSeq_++, nullptr, std::move(fn)});
}

void Scheduler::spawn(Task<> task) {
  ++liveRoots_;
  const std::uint64_t id = nextRootId_++;
  if (hooks_) hooks_->onRootSpawned(id, now_);
  RootRunner runner = RootRunner::drive(*this, std::move(task), id);
  scheduleResume(0.0, runner.handle);
}

std::uint64_t Scheduler::run() {
  const std::uint64_t before = eventsProcessed_;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    dispatch(ev);
    if (firstError_) break;
  }
  if (firstError_) {
    auto ep = std::exchange(firstError_, nullptr);
    std::rethrow_exception(ep);
  }
  return eventsProcessed_ - before;
}

std::uint64_t Scheduler::runUntil(SimTime untilTime) {
  const std::uint64_t before = eventsProcessed_;
  while (!queue_.empty() && queue_.top().time <= untilTime) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    dispatch(ev);
    if (firstError_) break;
  }
  if (now_ < untilTime) now_ = untilTime;
  if (firstError_) {
    auto ep = std::exchange(firstError_, nullptr);
    std::rethrow_exception(ep);
  }
  return eventsProcessed_ - before;
}

void Scheduler::dispatch(Event& ev) {
  ++eventsProcessed_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.callback();
  }
  if (hooks_) hooks_->onDispatch(now_, queue_.size());
}

}  // namespace bgckpt::sim
