// Pooled allocator for coroutine frames.
//
// Every simulated process and awaited sub-task is a coroutine, so a 64K-rank
// run allocates and frees hundreds of thousands of frames with a handful of
// distinct sizes. `FrameArena` recycles them: frames come from size-class
// free lists backed by large slabs that are bump-allocated once and reused
// for the rest of the process, so steady-state frame churn never touches
// malloc. `Task<T>::promise_type` (task.hpp) and the scheduler's RootRunner
// opt in by inheriting `detail::FrameArenaAllocated`.
//
// The arena is thread-local: the simulator is single-threaded, and hostio's
// thread-per-rank backend does not run coroutines, but a per-thread arena
// keeps the allocator correct even if tasks are ever built on another
// thread (frames must then be destroyed on the thread that created them —
// already true of every current use).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <unordered_set>
#include <vector>

// Under AddressSanitizer the arena becomes a pass-through to the global
// allocator: pooled recycling would hide use-after-free of coroutine frames
// from ASan (a freed frame looks "live" because its block is on a free
// list), which is exactly the bug class the sanitizer CI exists to catch.
#if defined(__SANITIZE_ADDRESS__)
#define BGCKPT_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BGCKPT_ARENA_PASSTHROUGH 1
#endif
#endif
#ifndef BGCKPT_ARENA_PASSTHROUGH
#define BGCKPT_ARENA_PASSTHROUGH 0
#endif

namespace bgckpt::sim {

class FrameArena {
 public:
  struct Stats {
    std::uint64_t allocs = 0;       // total allocate() calls
    std::uint64_t poolHits = 0;     // served from a free list
    std::uint64_t oversized = 0;    // fell through to operator new
    std::size_t slabBytes = 0;      // reserved slab storage
    std::size_t liveBytes = 0;      // currently outstanding frame bytes
  };

  /// The calling thread's arena.
  static FrameArena& instance();

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  const Stats& stats() const { return stats_; }

  // ------------------------------------------------------- audit (simcheck)
  // When auditing, the arena tracks every frame pointer handed out so the
  // SimChecker can detect leaked frames, double frees, and handles resumed
  // after their frame was freed. Only allocations made while the audit is
  // active are tracked; the normal hot path pays one predictable branch.
  enum class PointerState { kUnknown, kLive, kFreed };

  void beginAudit();
  void endAudit();
  bool auditing() const { return auditing_; }
  /// Frames allocated during the audit and not yet freed.
  std::size_t auditLiveCount() const { return auditLive_.size(); }
  /// Deallocations of a pointer that was already freed (and not reissued).
  std::uint64_t auditDoubleFrees() const { return auditDoubleFrees_; }
  /// Classify a pointer (e.g. a coroutine handle address) seen in the audit.
  PointerState pointerState(const void* p) const {
    if (auditLive_.count(p) != 0) return PointerState::kLive;
    if (auditFreed_.count(p) != 0) return PointerState::kFreed;
    return PointerState::kUnknown;
  }

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

 private:
  // Frames round up to 64-byte granularity; sizes beyond the largest class
  // (a pathological coroutine frame) fall through to global operator new.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxClasses = 64;  // up to 4 KiB pooled
  static constexpr std::size_t kSlabBytes = 256 * 1024;

  struct FreeBlock {
    FreeBlock* next;
  };

  void* refill(std::size_t cls);
  void auditOnAllocate(const void* p);
  void auditOnDeallocate(const void* p) noexcept;

  FreeBlock* freeLists_[kMaxClasses] = {};
  std::vector<char*> slabs_;
  char* slabCursor_ = nullptr;
  std::size_t slabRemaining_ = 0;
  Stats stats_;

  bool auditing_ = false;
  std::unordered_set<const void*> auditLive_;
  std::unordered_set<const void*> auditFreed_;
  std::uint64_t auditDoubleFrees_ = 0;
};

namespace detail {

/// Mixin giving a coroutine promise (and therefore its frame) arena-backed
/// allocation. The sized delete is required so blocks return to the right
/// size class.
struct FrameArenaAllocated {
  static void* operator new(std::size_t bytes) {
    return FrameArena::instance().allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FrameArena::instance().deallocate(p, bytes);
  }
};

}  // namespace detail

}  // namespace bgckpt::sim
