// Pooled allocator for coroutine frames.
//
// Every simulated process and awaited sub-task is a coroutine, so a 64K-rank
// run allocates and frees hundreds of thousands of frames with a handful of
// distinct sizes. `FrameArena` recycles them: frames come from size-class
// free lists backed by large slabs that are bump-allocated once and reused
// for the rest of the process, so steady-state frame churn never touches
// malloc. `Task<T>::promise_type` (task.hpp) and the scheduler's RootRunner
// opt in by inheriting `detail::FrameArenaAllocated`.
//
// The arena is thread-local: the simulator is single-threaded, and hostio's
// thread-per-rank backend does not run coroutines, but a per-thread arena
// keeps the allocator correct even if tasks are ever built on another
// thread (frames must then be destroyed on the thread that created them —
// already true of every current use).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace bgckpt::sim {

class FrameArena {
 public:
  struct Stats {
    std::uint64_t allocs = 0;       // total allocate() calls
    std::uint64_t poolHits = 0;     // served from a free list
    std::uint64_t oversized = 0;    // fell through to operator new
    std::size_t slabBytes = 0;      // reserved slab storage
    std::size_t liveBytes = 0;      // currently outstanding frame bytes
  };

  /// The calling thread's arena.
  static FrameArena& instance();

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  const Stats& stats() const { return stats_; }

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

 private:
  // Frames round up to 64-byte granularity; sizes beyond the largest class
  // (a pathological coroutine frame) fall through to global operator new.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxClasses = 64;  // up to 4 KiB pooled
  static constexpr std::size_t kSlabBytes = 256 * 1024;

  struct FreeBlock {
    FreeBlock* next;
  };

  void* refill(std::size_t cls);

  FreeBlock* freeLists_[kMaxClasses] = {};
  std::vector<char*> slabs_;
  char* slabCursor_ = nullptr;
  std::size_t slabRemaining_ = 0;
  Stats stats_;
};

namespace detail {

/// Mixin giving a coroutine promise (and therefore its frame) arena-backed
/// allocation. The sized delete is required so blocks return to the right
/// size class.
struct FrameArenaAllocated {
  static void* operator new(std::size_t bytes) {
    return FrameArena::instance().allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FrameArena::instance().deallocate(p, bytes);
  }
};

}  // namespace detail

}  // namespace bgckpt::sim
