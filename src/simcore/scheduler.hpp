// Discrete-event scheduler: the heart of the simulation.
//
// The scheduler owns a time-ordered event queue. Events are either plain
// callbacks or coroutine resumptions. Simulated processes are `Task<>`
// coroutines started with `spawn`; they advance simulated time by awaiting
// `delay(dt)` and interact through the synchronisation primitives in
// channel.hpp / resource.hpp, all of which route wakeups through this queue
// so that execution order is deterministic: (time, insertion sequence).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "simcore/task.hpp"
#include "simcore/units.hpp"

namespace bgckpt::sim {

/// Thrown out of Scheduler::run when a root task exited with an exception.
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Observation points on the event loop. The scheduler holds at most one
/// hooks object (not owned) and calls it only when installed, so the
/// uninstrumented hot path pays a single null-pointer branch per event.
/// src/obs provides the standard implementation (obs::SchedulerProbe).
class SchedulerHooks {
 public:
  virtual ~SchedulerHooks() = default;
  /// After each event is dispatched. `queueDepth` is the post-pop depth.
  virtual void onDispatch(SimTime now, std::size_t queueDepth) = 0;
  /// A root task was spawned / finished (normally or with an error).
  /// `rootId` is a dense 0-based sequence number in spawn order.
  virtual void onRootSpawned(std::uint64_t rootId, SimTime now) = 0;
  virtual void onRootDone(std::uint64_t rootId, SimTime now) = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Queue a coroutine resumption `delay` seconds from now.
  void scheduleResume(Duration delay, std::coroutine_handle<> h);

  /// Queue a callback `delay` seconds from now.
  void scheduleCall(Duration delay, std::function<void()> fn);

  /// Awaitable that suspends the current task for `dt` simulated seconds.
  auto delay(Duration dt) {
    struct Awaiter {
      Scheduler& sched;
      Duration dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sched.scheduleResume(dt, h);
      }
      void await_resume() const noexcept {}
    };
    if (dt < 0) throw SimulationError("negative delay");
    return Awaiter{*this, dt};
  }

  /// Start a root process. It begins running when `run()` is next called.
  void spawn(Task<> task);

  /// Process events until the queue is empty. Rethrows the first root-task
  /// exception (after the queue drains or immediately on throw).
  /// Returns the number of events processed.
  std::uint64_t run();

  /// Process events with timestamps <= `untilTime`. Advances `now()` to
  /// `untilTime` if the queue empties earlier.
  std::uint64_t runUntil(SimTime untilTime);

  /// Root tasks spawned but not yet finished. Nonzero after run() returns
  /// means deadlock: someone is waiting on a wakeup that will never come.
  std::size_t liveRoots() const { return liveRoots_; }

  std::uint64_t eventsProcessed() const { return eventsProcessed_; }

  /// Events currently queued (diagnostic; sampled by SchedulerHooks).
  std::size_t queueDepth() const { return queue_.size(); }

  /// Install (or clear, with nullptr) the observation hooks. The hooks
  /// object is borrowed and must outlive the scheduler or be cleared first.
  void setHooks(SchedulerHooks* hooks) { hooks_ = hooks; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;    // exactly one of handle/callback set
    std::function<void()> callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event& ev);
  void noteRootDone(std::uint64_t rootId) {
    --liveRoots_;
    if (hooks_) hooks_->onRootDone(rootId, now_);
  }
  void noteRootFailed(std::uint64_t rootId, std::exception_ptr ep) {
    if (!firstError_) firstError_ = ep;
    --liveRoots_;
    if (hooks_) hooks_->onRootDone(rootId, now_);
  }

  friend struct RootRunner;

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t nextRootId_ = 0;
  std::size_t liveRoots_ = 0;
  std::exception_ptr firstError_;
  SchedulerHooks* hooks_ = nullptr;
};

}  // namespace bgckpt::sim
