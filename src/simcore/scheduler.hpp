// Discrete-event scheduler: the heart of the simulation.
//
// The scheduler owns a time-ordered event queue. Events are either plain
// callbacks or coroutine resumptions. Simulated processes are `Task<>`
// coroutines started with `spawn`; they advance simulated time by awaiting
// `delay(dt)` and interact through the synchronisation primitives in
// channel.hpp / resource.hpp, all of which route wakeups through this queue
// so that execution order is deterministic: (time, insertion sequence).
//
// Event storage is tiered for throughput (the queue is the hot path that
// bounds how large a machine the figure benches can afford):
//
//   tier 0  "now" FIFO     events at exactly the current time — the wakeups
//                          scheduled by Resource::release, Channel::push,
//                          Gate::fire and Barrier release. Pushed and popped
//                          in O(1) with no comparisons.
//   tier 1  near ring      a window of 256 time buckets. Events whose time
//                          falls inside the window append in O(1); a bucket
//                          is sorted once, when it becomes the active
//                          (lowest) bucket — a simplified ladder queue.
//   tier 2  far pool       an unsorted vector of 24-byte (time, seq, index)
//                          keys for events beyond the window: O(1) push.
//                          When the ring drains, one partition scan moves
//                          everything inside a new window (sized from the
//                          observed timestamp spread) into the buckets and
//                          compacts the rest — amortized O(1) per event,
//                          no heap sifting.
//
// Event payloads (coroutine handle / callback) live in a pooled free list,
// so steady-state scheduling performs no allocation and heap sifts move
// small PODs instead of whole events. All tiers pop in strict (time, seq)
// order, so the dispatch sequence is bit-identical to a single binary heap;
// `Config::legacyQueue` keeps the straightforward std::priority_queue
// implementation selectable as an A/B reference for determinism tests.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <source_location>
#include <stdexcept>
#include <vector>

#include "simcore/task.hpp"
#include "simcore/units.hpp"

namespace bgckpt::sim {

class SimChecker;

/// Thrown out of Scheduler::run when a root task exited with an exception.
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Why an event was scheduled — the causal edge from the dispatching event
/// to the scheduled one. `kDelay` is a task advancing its own clock (the
/// default); everything else is one simulated process waking another.
/// obs::CritPathRecorder groups critical-path time by these kinds.
enum class WakeKind : std::uint8_t {
  kDelay = 0,        // co_await sched.delay(dt): self edge
  kSpawn,            // root task's first resume
  kResourceGrant,    // Resource::release admitted a queued waiter
  kGateFire,         // Gate::fire / WaitGroup completion
  kBarrierRelease,   // last Barrier arrival released the waiters
  kChannelPush,      // Channel delivered an item / woke a sender
  kMessageDeliver,   // mpisim matched a message to a posted receive
  kCallback,         // scheduleCall timer/completion callback
};
inline constexpr int kNumWakeKinds = 8;

const char* wakeKindName(WakeKind kind);

/// Optional annotation carried by scheduleResume/scheduleCall: the wake
/// kind plus a label naming the waker (a Resource name, "barrier", ...).
/// The label must point at storage outliving the scheduler observation
/// (resource names and string literals both qualify). A null label falls
/// back to the scheduling site's file name, which gives delay edges a free
/// per-layer attribution (the file where the simulated time elapses).
struct WakeEdge {
  WakeKind kind = WakeKind::kDelay;
  const char* label = nullptr;
};

/// Observation points on the event loop. The scheduler holds at most one
/// hooks object (not owned) and calls it only when installed, so the
/// uninstrumented hot path pays a single null-pointer branch per event.
/// src/obs provides the standard implementation (obs::SchedulerProbe).
class SchedulerHooks {
 public:
  virtual ~SchedulerHooks() = default;
  /// After each event is dispatched. `queueDepth` is the post-pop depth.
  virtual void onDispatch(SimTime now, std::size_t queueDepth) = 0;
  /// A root task was spawned / finished (normally or with an error).
  /// `rootId` is a dense 0-based sequence number in spawn order.
  virtual void onRootSpawned(std::uint64_t rootId, SimTime now) = 0;
  virtual void onRootDone(std::uint64_t rootId, SimTime now) = 0;

  /// Opt-in firehose: one call per event *scheduled*, carrying the causal
  /// edge from the currently-dispatching event (`parentSeq`; kNoParent when
  /// scheduled from outside the event loop). The scheduler caches
  /// wantsScheduleEvents() at setHooks() time, so implementations that
  /// return false (the default) pay one predictable branch per schedule.
  /// Dispatch time always equals `when`, so recording the edge at schedule
  /// time fully determines the executed event graph.
  static constexpr std::uint64_t kNoParent = ~std::uint64_t{0};
  virtual bool wantsScheduleEvents() const { return false; }
  virtual void onEventScheduled(std::uint64_t /*seq*/,
                                std::uint64_t /*parentSeq*/, SimTime /*when*/,
                                WakeKind /*kind*/, const char* /*label*/) {}
};

class Scheduler {
 public:
  struct Config {
    /// Pre-reserve pool/heap storage for roughly this many queued events.
    std::size_t expectedEvents = 0;
    /// Use the reference std::priority_queue implementation instead of the
    /// tiered queue. Dispatch order is identical; this exists so tests can
    /// prove it (old-vs-new determinism regression).
    bool legacyQueue = false;
  };

  Scheduler() : Scheduler(Config{}) {}
  explicit Scheduler(const Config& config);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Pre-reserve queue storage for roughly `expectedEvents` queued events
  /// (a capacity hint; the queue still grows on demand).
  void reserve(std::size_t expectedEvents);

  /// Queue a coroutine resumption `delay` seconds from now. The defaulted
  /// source location attributes the scheduling site when a SimChecker is
  /// installed (past-event and tie-order-hazard reports). The WakeEdge
  /// overload annotates *why* (who woke whom) for causal-graph observers;
  /// the plain overload records the default self edge (WakeKind::kDelay).
  void scheduleResume(
      Duration delay, std::coroutine_handle<> h,
      std::source_location loc = std::source_location::current()) {
    scheduleResume(delay, h, WakeEdge{}, loc);
  }
  void scheduleResume(
      Duration delay, std::coroutine_handle<> h, WakeEdge edge,
      std::source_location loc = std::source_location::current());

  /// Queue a callback `delay` seconds from now.
  void scheduleCall(Duration delay, std::function<void()> fn,
                    std::source_location loc = std::source_location::current()) {
    scheduleCall(delay, std::move(fn), WakeEdge{WakeKind::kCallback, nullptr},
                 loc);
  }
  void scheduleCall(Duration delay, std::function<void()> fn, WakeEdge edge,
                    std::source_location loc = std::source_location::current());

  /// Queue a callback at the *absolute* simulated time `when` (>= now()).
  /// Cross-shard event injection (simcore/shard.hpp) uses this: the sender
  /// computed `when` on its own clock, and re-deriving it as a delay against
  /// this scheduler's clock (`now + (when - now)`) is not exact in floating
  /// point — the merge would not be bit-identical to a serial execution.
  void scheduleCallAt(SimTime when, std::function<void()> fn, WakeEdge edge,
                      std::source_location loc = std::source_location::current());

  /// Awaitable that suspends the current task for `dt` simulated seconds.
  [[nodiscard]] auto delay(
      Duration dt, std::source_location loc = std::source_location::current()) {
    struct Awaiter {
      Scheduler& sched;
      Duration dt;
      std::source_location loc;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sched.scheduleResume(dt, h, loc);
      }
      void await_resume() const noexcept {}
    };
    if (dt < 0) throw SimulationError("negative delay");
    return Awaiter{*this, dt, loc};
  }

  /// Start a root process. It begins running when `run()` is next called.
  void spawn(Task<> task);

  /// Process events until the queue is empty. Rethrows the first root-task
  /// exception (after the queue drains or immediately on throw).
  /// Returns the number of events processed.
  std::uint64_t run();

  /// Process events with timestamps <= `untilTime`. Advances `now()` to
  /// `untilTime` if the queue empties earlier.
  std::uint64_t runUntil(SimTime untilTime);

  /// Process events with timestamps strictly < `horizon` and stop. Unlike
  /// runUntil, `now()` is left at the last dispatched event: the caller (the
  /// conservative-window loop in shard.cpp) may still inject events at any
  /// time >= the horizon, so the clock must not run ahead of them.
  std::uint64_t runBefore(SimTime horizon);

  /// Timestamp of the earliest queued event; +infinity when the queue is
  /// empty. The shard synchronization protocol reduces this across shards
  /// to derive each conservative window.
  SimTime peekNextTime();

  /// Root tasks spawned but not yet finished. Nonzero after run() returns
  /// means deadlock: someone is waiting on a wakeup that will never come.
  std::size_t liveRoots() const { return liveRoots_; }

  std::uint64_t eventsProcessed() const { return eventsProcessed_; }

  /// Events currently queued (diagnostic; sampled by SchedulerHooks).
  std::size_t queueDepth() const {
    return legacy_ ? legacyQueue_.size() : size_;
  }

  /// Event-pool slots ever allocated (diagnostic: a drained-and-refilled
  /// queue reuses slots instead of growing, which tests assert).
  std::size_t eventPoolSize() const { return pool_.size(); }

  /// Install (or clear, with nullptr) the observation hooks. The hooks
  /// object is borrowed and must outlive the scheduler or be cleared first.
  /// wantsScheduleEvents() is sampled here, once — re-call setHooks after
  /// changing what the hooks object wants.
  void setHooks(SchedulerHooks* hooks) {
    hooks_ = hooks;
    hooksWantSchedule_ = hooks != nullptr && hooks->wantsScheduleEvents();
  }

  /// Sequence number of the event being dispatched right now;
  /// SchedulerHooks::kNoParent outside the event loop. This is the parent
  /// of every event scheduled from the running handler.
  std::uint64_t dispatchingSeq() const { return dispatchingSeq_; }

  /// Install (or clear) the runtime invariant checker (simcheck.hpp).
  /// Borrowed; normally wired through SimChecker::attach. Resources query
  /// this at release/teardown, the dispatch loop feeds it event metadata.
  void setChecker(SimChecker* check);
  SimChecker* checker() const { return check_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kBuckets = 256;

  struct EventNode {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle;  // null => callback event
    std::function<void()> callback;
    std::uint32_t nextFree = kNil;
  };
  struct FarEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t idx;
  };
  struct FarLater {  // max-heap adaptor ordering -> min-(time, seq) heap
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct FarEarlier {
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  /// Scheduling-site metadata, kept in a side table parallel to the event
  /// pool so the checker-off hot path carries no extra per-node weight. Only
  /// written while a SimChecker is installed; `file == nullptr` marks slots
  /// scheduled before the checker attached.
  struct EventMeta {
    SimTime scheduledAt = 0.0;
    const char* file = nullptr;
    unsigned line = 0;
  };

  // Reference implementation (Config::legacyQueue).
  struct LegacyEvent {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    std::function<void()> callback;
    EventMeta meta;
  };
  struct LegacyLater {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void scheduleAt(SimTime t, std::function<void()> fn, WakeEdge edge,
                  std::source_location loc);
  std::uint32_t allocNode();
  void freeNode(std::uint32_t idx);
  void pushIndex(std::uint32_t idx);
  void pushRing(std::uint32_t idx, SimTime t);
  /// Pop the globally minimal (time, seq) event; requires size_ > 0.
  std::uint32_t popReady();
  void popRing();
  void popNear();
  /// Make buckets_[activeBucket_] the sorted, non-empty lowest bucket.
  /// Requires ringCount_ > 0.
  void prepareActiveBucket();
  /// Seed a fresh window from the far heap; requires !far_.empty().
  void refillFromFar();
  /// Timestamp of the next event (infinity when empty).
  SimTime nextEventTime();
  /// Dispatch one event; requires a non-empty queue.
  void step();
  void stepLegacy();

  void noteRootDone(std::uint64_t rootId) {
    --liveRoots_;
    if (hooks_) hooks_->onRootDone(rootId, now_);
  }
  void noteRootFailed(std::uint64_t rootId, std::exception_ptr ep) {
    if (!firstError_) firstError_ = ep;
    --liveRoots_;
    if (hooks_) hooks_->onRootDone(rootId, now_);
  }

  friend struct RootRunner;

  // Event pool.
  std::vector<EventNode> pool_;
  std::uint32_t freeHead_ = kNil;

  // Tier 0: events at exactly now_, FIFO (== seq) order.
  std::vector<std::uint32_t> nowQ_;
  std::size_t nowHead_ = 0;

  // Tier 1: near-future ring. Bucket i covers
  // [windowLo_ + i * bucketWidth_, windowLo_ + (i + 1) * bucketWidth_).
  // Buckets carry (time, seq, idx) entries so activation sorts and head
  // comparisons stay cache-local instead of gather-loading the pool.
  // Events that land in the active bucket after it was sorted go to the
  // small `near_` heap instead (a middle-insert into the sorted bucket is
  // O(bucket) memmove, and short delays make it the common case).
  std::vector<std::vector<FarEntry>> buckets_;
  std::vector<FarEntry> near_;
  double bucketWidth_ = 0.0;  // 0 until the first window is seeded
  SimTime windowLo_ = 0.0;
  SimTime windowEnd_ = 0.0;
  std::size_t activeBucket_ = 0;
  std::size_t drainPos_ = 0;
  bool activeSorted_ = false;
  std::size_t ringCount_ = 0;

  // Tier 2: far-future pool, unsorted. farMin_/farMax_ are exact bounds,
  // maintained on push and recomputed by the refill partition scan.
  std::vector<FarEntry> far_;
  SimTime farMin_ = 0.0;
  SimTime farMax_ = 0.0;

  // srclint:allow(priority-queue): this is the legacy A/B reference queue
  // itself — Config::legacyQueue routes dispatch through it to prove the
  // tiered queue preserves (time, seq) order.
  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyLater>
      legacyQueue_;
  const bool legacy_ = false;

  std::size_t size_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t nextRootId_ = 0;
  std::size_t liveRoots_ = 0;
  std::exception_ptr firstError_;
  SchedulerHooks* hooks_ = nullptr;
  bool hooksWantSchedule_ = false;
  std::uint64_t dispatchingSeq_ = SchedulerHooks::kNoParent;
  SimChecker* check_ = nullptr;
  std::vector<EventMeta> meta_;  // parallel to pool_; used iff check_ set
};

}  // namespace bgckpt::sim
