// Counted resources with FIFO admission.
//
// A `Resource` models a server, link slot pool, or token bucket: it holds a
// fixed number of tokens; `acquire(n)` suspends until `n` tokens can be
// granted, strictly in arrival order (no small-request bypass — this is the
// queueing discipline of a storage server or lock manager). `Mutex` is the
// single-token special case. `ScopedTokens` releases on destruction.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "simcore/scheduler.hpp"

namespace bgckpt::sim {

class Resource {
 public:
  Resource(Scheduler& sched, std::int64_t tokens)
      : sched_(sched), available_(tokens), total_(tokens) {
    assert(tokens > 0);
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::int64_t available() const { return available_; }
  std::int64_t total() const { return total_; }
  std::size_t queueLength() const { return waiters_.size(); }

  /// Awaitable acquisition of `n` tokens (FIFO).
  auto acquire(std::int64_t n = 1) {
    assert(n > 0 && n <= total_);
    return Awaiter{*this, n, {}};
  }

  /// Return `n` tokens and admit as many queued waiters as now fit.
  void release(std::int64_t n = 1) {
    available_ += n;
    assert(available_ <= total_);
    while (!waiters_.empty() && waiters_.front()->amount <= available_) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      available_ -= w->amount;
      sched_.scheduleResume(0.0, w->handle);
    }
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t amount = 0;
  };

  struct Awaiter {
    Resource& res;
    std::int64_t amount;
    Waiter waiter;
    bool await_ready() {
      // FIFO: even if tokens are free, queued waiters go first.
      if (res.waiters_.empty() && res.available_ >= amount) {
        res.available_ -= amount;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter.handle = h;
      waiter.amount = amount;
      res.waiters_.push_back(&waiter);
    }
    void await_resume() const noexcept {}
  };

  Scheduler& sched_;
  std::int64_t available_;
  std::int64_t total_;
  std::deque<Waiter*> waiters_;
};

/// RAII helper: acquire then release on scope exit.
///   auto hold = co_await ScopedTokens::take(res, n); ... (released at `}`)
class ScopedTokens {
 public:
  ScopedTokens(Resource& res, std::int64_t n) : res_(&res), n_(n) {}
  ScopedTokens(ScopedTokens&& o) noexcept : res_(o.res_), n_(o.n_) {
    o.res_ = nullptr;
  }
  ScopedTokens& operator=(ScopedTokens&& o) noexcept {
    if (this != &o) {
      releaseNow();
      res_ = o.res_;
      n_ = o.n_;
      o.res_ = nullptr;
    }
    return *this;
  }
  ScopedTokens(const ScopedTokens&) = delete;
  ScopedTokens& operator=(const ScopedTokens&) = delete;
  ~ScopedTokens() { releaseNow(); }

  void releaseNow() {
    if (res_) {
      res_->release(n_);
      res_ = nullptr;
    }
  }

 private:
  Resource* res_;
  std::int64_t n_;
};

class Mutex {
 public:
  explicit Mutex(Scheduler& sched) : res_(sched, 1) {}
  auto lock() { return res_.acquire(1); }
  void unlock() { res_.release(1); }
  Resource& resource() { return res_; }

 private:
  Resource res_;
};

}  // namespace bgckpt::sim
