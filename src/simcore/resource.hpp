// Counted resources with FIFO admission.
//
// A `Resource` models a server, link slot pool, or token bucket: it holds a
// fixed number of tokens; `acquire(n)` suspends until `n` tokens can be
// granted, strictly in arrival order (no small-request bypass — this is the
// queueing discipline of a storage server or lock manager). `Mutex` is the
// single-token special case. `ScopedTokens` releases on destruction.
//
// When a SimChecker is installed on the scheduler (simcheck.hpp), every
// release is balance-checked against the token total and each Resource
// verifies at destruction that all tokens came back and no waiter is still
// queued — the name passed at construction attributes the report.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <source_location>

#include "simcore/scheduler.hpp"
#include "simcore/simcheck.hpp"

namespace bgckpt::sim {

class Resource {
 public:
  Resource(Scheduler& sched, std::int64_t tokens,
           const char* name = "resource")
      : sched_(sched), available_(tokens), total_(tokens), name_(name) {
    SIM_CHECK(tokens > 0, "Resource needs a positive token count");
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  ~Resource() {
    if (SimChecker* check = sched_.checker())
      check->onResourceTeardown(name_, available_, total_, waiters_.size());
  }

  std::int64_t available() const { return available_; }
  std::int64_t total() const { return total_; }
  const char* name() const { return name_; }
  std::size_t queueLength() const { return waiters_.size(); }

  /// Awaitable acquisition of `n` tokens (FIFO).
  [[nodiscard]] auto acquire(std::int64_t n = 1) {
    SIM_CHECK(n > 0 && n <= total_,
              "acquire amount must be within the resource total");
    return Awaiter{*this, n, {}};
  }

  /// Return `n` tokens and admit as many queued waiters as now fit.
  void release(std::int64_t n = 1,
               std::source_location loc = std::source_location::current()) {
    available_ += n;
    if (available_ > total_) {
      if (SimChecker* check = sched_.checker()) {
        check->onResourceOverRelease(name_, available_, total_, loc);
        available_ = total_;  // keep the pool sane in warn mode
      } else {
        detail::simCheckFail("available_ <= total_",
                             "Resource over-release (double release?)",
                             loc.file_name(), static_cast<int>(loc.line()));
      }
    }
    while (!waiters_.empty() && waiters_.front()->amount <= available_) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      available_ -= w->amount;
      sched_.scheduleResume(0.0, w->handle,
                            WakeEdge{WakeKind::kResourceGrant, name_});
    }
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t amount = 0;
  };

  struct Awaiter {
    Resource& res;
    std::int64_t amount;
    Waiter waiter;
    bool await_ready() {
      // FIFO: even if tokens are free, queued waiters go first.
      if (res.waiters_.empty() && res.available_ >= amount) {
        res.available_ -= amount;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter.handle = h;
      waiter.amount = amount;
      res.waiters_.push_back(&waiter);
    }
    void await_resume() const noexcept {}
  };

  Scheduler& sched_;
  std::int64_t available_;
  std::int64_t total_;
  const char* name_;
  std::deque<Waiter*> waiters_;
};

/// RAII helper: acquire then release on scope exit.
///   auto hold = co_await ScopedTokens::take(res, n); ... (released at `}`)
/// or, when the acquire was already awaited separately:
///   ScopedTokens hold(res, n);
class [[nodiscard]] ScopedTokens {
 public:
  ScopedTokens(Resource& res, std::int64_t n) : res_(&res), n_(n) {}
  ScopedTokens(ScopedTokens&& o) noexcept : res_(o.res_), n_(o.n_) {
    o.res_ = nullptr;
  }
  ScopedTokens& operator=(ScopedTokens&& o) noexcept {
    if (this != &o) {
      releaseNow();
      res_ = o.res_;
      n_ = o.n_;
      o.res_ = nullptr;
    }
    return *this;
  }
  ScopedTokens(const ScopedTokens&) = delete;
  ScopedTokens& operator=(const ScopedTokens&) = delete;
  ~ScopedTokens() { releaseNow(); }

  /// Awaitable factory: acquire `n` tokens, hand back the release guard.
  [[nodiscard]] static Task<ScopedTokens> take(Resource& res, std::int64_t n) {
    co_await res.acquire(n);
    co_return ScopedTokens(res, n);
  }

  void releaseNow() {
    if (res_) {
      res_->release(n_);
      res_ = nullptr;
    }
  }

 private:
  Resource* res_;
  std::int64_t n_;
};

class Mutex {
 public:
  explicit Mutex(Scheduler& sched, const char* name = "mutex")
      : res_(sched, 1, name) {}
  [[nodiscard]] auto lock() { return res_.acquire(1); }
  void unlock() { res_.release(1); }
  Resource& resource() { return res_; }

 private:
  Resource res_;
};

}  // namespace bgckpt::sim
