// Streaming statistics used throughout the models and benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bgckpt::sim {

/// Welford accumulator: count, mean, variance, min, max in O(1) space.
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Exact order statistics over a retained sample vector.
class Sample {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// q in [0, 1]; nearest-rank quantile. 0.5 is the median.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }
  double mean() const;

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins. Used for I/O-time distribution figures.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t binCount(std::size_t i) const { return counts_[i]; }
  double binLow(std::size_t i) const;
  double binHigh(std::size_t i) const { return binLow(i + 1); }
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace bgckpt::sim
