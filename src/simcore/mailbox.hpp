// Bounded cross-shard mailboxes for the parallel scheduler (shard.hpp).
//
// Each ordered shard pair (src -> dst) owns one single-producer/single-
// consumer ring: the src shard's worker thread is the only producer, the
// dst shard's worker the only consumer, so push and pop are wait-free and
// need nothing stronger than acquire/release on the two cursors. The ring
// is bounded by design — the conservative-window protocol drains every
// mailbox at each window boundary, so its capacity only has to absorb one
// window's worth of traffic. A burst beyond that spills into a small
// mutex-guarded overflow vector instead of blocking the producer (blocking
// would deadlock: the consumer drains only at the barrier the producer is
// trying to reach). Order is immaterial at this layer: the drain merges
// ring + overflow and the shard group re-sorts the batch by the
// deterministic (time, source, sequence) key before injection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "simcore/units.hpp"

namespace bgckpt::sim {

/// One cross-shard event in flight: execute `fn` on the destination shard
/// at absolute simulated time `when`. `src`/`seq` form the deterministic
/// merge key (see ShardGroup::send): `src` is the sending shard (or a
/// model-level source id when the sender supplies one) and `seq` a
/// per-source monotone counter, so equal-time arrivals inject in an order
/// independent of thread interleaving and of the shard count.
struct RemoteEvent {
  SimTime when = 0.0;
  std::uint32_t src = 0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
};

/// Bounded wait-free SPSC ring. Capacity is rounded up to a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when the ring is full.
  bool tryPush(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool tryPop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer-side occupancy (entries currently in flight). Only exact on
  /// the producing thread; used for the mailbox high-water diagnostic.
  std::size_t sizeProducer() const {
    return head_.load(std::memory_order_relaxed) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  // written by the producer only
  std::atomic<std::size_t> tail_{0};  // written by the consumer only
};

/// The (src -> dst) channel: ring fast path plus the overflow valve.
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity) : ring_(capacity) {}

  /// Producer (src shard's thread only).
  void push(RemoteEvent&& ev) {
    if (ring_.tryPush(std::move(ev))) {
      const std::size_t occ = ring_.sizeProducer();
      if (occ > ringHighWater_) ringHighWater_ = occ;
      return;
    }
    // The ring is full for the rest of this window (the consumer only
    // drains at the boundary); spill under the lock. `ev` was not consumed
    // by the failed tryPush.
    std::lock_guard<std::mutex> lock(overflowMu_);
    overflow_.push_back(std::move(ev));
    ++overflowed_;
    const std::size_t occ = ring_.capacity() + overflow_.size();
    if (occ > ringHighWater_) ringHighWater_ = occ;
  }

  /// Consumer (dst shard's thread only), at a window boundary: append
  /// everything in flight to `out`. The caller re-sorts by merge key.
  void drainInto(std::vector<RemoteEvent>& out) {
    RemoteEvent ev;
    while (ring_.tryPop(ev)) out.push_back(std::move(ev));
    std::lock_guard<std::mutex> lock(overflowMu_);
    for (RemoteEvent& o : overflow_) out.push_back(std::move(o));
    overflow_.clear();
  }

  /// Times the bounded ring spilled to the overflow path (a sizing
  /// diagnostic, surfaced per-(src,dst) in ShardGroup::Stats).
  std::uint64_t overflowed() const { return overflowed_; }

  /// Peak in-flight occupancy seen by the producer (ring entries; counts
  /// past the ring capacity while spilled). Tells you how much ring the
  /// channel actually needed — the sizing signal a summed overflow count
  /// destroys. Read post-run.
  std::size_t ringHighWater() const { return ringHighWater_; }

 private:
  SpscRing<RemoteEvent> ring_;
  std::mutex overflowMu_;
  std::vector<RemoteEvent> overflow_;
  std::uint64_t overflowed_ = 0;  // written under overflowMu_, read post-run
  std::size_t ringHighWater_ = 0;  // written by the producer, read post-run
};

}  // namespace bgckpt::sim
