#include "simcore/random.hpp"

#include "simcore/simcheck.hpp"

#include <cmath>
#include <numbers>

namespace bgckpt::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

RngStream::RngStream(std::uint64_t campaignSeed, std::string_view name,
                     std::uint64_t index) {
  std::uint64_t mix = campaignSeed ^ hashName(name) ^ (index * 0x9e3779b97f4a7c15ULL);
  for (auto& s : s_) s = splitmix64(mix);
}

std::uint64_t RngStream::nextU64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::uniform01() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t RngStream::uniformInt(std::uint64_t n) {
  SIM_CHECK(n > 0, "uniformInt needs a positive range");
  // Rejection-free multiply-shift; bias is negligible for n << 2^64.
  return static_cast<std::uint64_t>(
      static_cast<double>(n) * uniform01());
}

double RngStream::exponential(double mean) {
  SIM_CHECK(mean > 0, "exponential needs a positive mean");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double RngStream::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double RngStream::lognormal(double median, double sigmaLog) {
  SIM_CHECK(median > 0, "lognormal needs a positive median");
  return median * std::exp(normal(0.0, sigmaLog));
}

bool RngStream::chance(double probability) {
  return uniform01() < probability;
}

}  // namespace bgckpt::sim
