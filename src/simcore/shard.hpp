// Parallel discrete-event execution: sharded schedulers under conservative
// lookahead windows with a deterministic cross-shard merge.
//
// A ShardGroup owns S independent Schedulers ("shards"), each with its own
// tiered event queue and — because coroutine frames come from the
// thread-local FrameArena — its own frame pool. Shards are pinned to worker
// threads (shard i runs on thread i % T for the whole run, so every frame
// is allocated and destroyed on one thread). Simulated entities that
// interact at zero simulated latency must live on the same shard; entities
// that only interact through a physical link with latency >= L (a torus
// hop, an ION uplink) may live on different shards and exchange events
// through bounded mailboxes (mailbox.hpp).
//
// Synchronization is the classic conservative (CMB/YAWNS) window protocol,
// the scheme ROSS builds on:
//
//   repeat
//     drain    every shard injects its pending mailbox arrivals
//     reduce   minNext = min over shards of peekNextTime()
//              horizon = minNext + lookahead
//     execute  every shard runs events with time < horizon in parallel
//   until all queues and mailboxes are empty
//
// Safety: a cross-shard send from an event executing at time t arrives at
// t + delay with delay >= lookahead >= ... >= minNext + lookahead =
// horizon, i.e. no event executed inside the window can affect any other
// shard within the same window.
//
// Determinism: the executed event sequence is a pure function of the model,
// independent of the worker-thread count and of real-time interleaving.
//   * The window sequence depends only on queue states (minNext is a
//     reduction over deterministic per-shard clocks).
//   * Arrivals are injected at the window boundary in ascending
//     (when, src, seq) order — src/seq being the sender-assigned merge key,
//     not anything wall-clock dependent — so they receive local sequence
//     numbers deterministically, and the in-shard tie-break (time, seq)
//     stays exact. This mirrors the old-vs-new queue determinism contract
//     in tests/integration: a threads=1 cooperative execution of the same
//     shard topology is bit-identical to the threads=N execution, which the
//     shard tests and the sharded-vs-serial integration test assert.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "simcore/mailbox.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/units.hpp"

namespace bgckpt::sim {

class ShardRunObserver;
class RuntimeObserver;

/// Real-time phases of the conservative window protocol, reported to an
/// installed RuntimeObserver. These are wall-clock concepts — the simulated
/// model never sees them.
enum class WindowPhase : std::uint8_t {
  kSetup = 0,   ///< model setup on the owning worker, before window 0
  kDrain,       ///< mailbox drain + sorted injection (per shard)
  kReduce,      ///< minNext reduction (single-threaded, barrier completion)
  kBarrier,     ///< wait at a window barrier (per worker)
  kExec,        ///< runBefore(horizon) (per shard)
};

/// Geometry of one ShardGroup::run, handed to the observer up front.
struct ShardRunInfo {
  unsigned shards = 0;
  unsigned threads = 0;  ///< actual worker count (1 = cooperative driver)
  Duration lookahead = 0.0;
};

class ShardGroup {
 public:
  struct Config {
    /// Number of shards (independent schedulers). Must be >= 1.
    unsigned shards = 1;
    /// Worker threads. 0 means one per shard; 1 means cooperative serial
    /// execution on the calling thread (the determinism reference). Shard i
    /// is pinned to worker i % threads for the whole run.
    unsigned threads = 0;
    /// Conservative lookahead: the minimum cross-shard latency, in
    /// simulated seconds. Every send() must cover at least this much
    /// simulated time. Must be > 0 when shards > 1 — with zero lookahead
    /// the window never advances past a single timestamp.
    Duration lookahead = 0.0;
    /// Per-(src,dst) mailbox ring capacity (entries). Bursts beyond it take
    /// the mutexed overflow path — correct, just slower.
    std::size_t mailboxCapacity = 4096;
    /// Per-shard event-queue tuning (tiered/legacy, capacity hints).
    Scheduler::Config scheduler;
  };

  struct Stats {
    std::uint64_t events = 0;    ///< events dispatched, all shards
    std::uint64_t windows = 0;   ///< conservative windows executed
    std::uint64_t messages = 0;  ///< cross-shard events delivered
    std::uint64_t overflow = 0;  ///< mailbox ring spills, all channels

    /// One (src -> dst) mailbox that actually saw pressure: either it
    /// spilled, or its ring high-water is nonzero. The per-pair numbers are
    /// the sizing signal the aggregate `overflow` cannot carry — a single
    /// hot channel and uniform background pressure sum to the same total.
    struct Channel {
      unsigned src = 0;
      unsigned dst = 0;
      std::uint64_t overflow = 0;      ///< spills on this channel
      std::size_t ringHighWater = 0;   ///< peak in-flight occupancy
    };

    std::vector<std::uint64_t> shardEvents;     ///< events run, per shard
    std::vector<std::uint64_t> shardDelivered;  ///< arrivals, per shard
    std::vector<Channel> channels;  ///< channels with traffic, (src,dst) order
  };

  explicit ShardGroup(const Config& config);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;
  ~ShardGroup();

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  Scheduler& shard(unsigned i) { return *shards_[i].sched; }

  /// Register model setup for shard `i`. Runs on the shard's owning worker
  /// thread before the first window (in shard order on each worker), so
  /// coroutine frames spawned here land in that thread's FrameArena.
  /// Call before run().
  void postSetup(unsigned i, std::function<void(Scheduler&)> setup);

  /// Send a cross-shard event: run `fn` on shard `to` at
  /// shard(from).now() + delay. `delay` must be >= Config::lookahead.
  /// `src`/`srcSeq` form the deterministic merge key for equal-time
  /// arrivals at the destination. The convenience overload keys by the
  /// sending shard and a per-(from,to) counter — the "shard id + sequence
  /// number" tie-break; models that must stay deterministic across
  /// *different* shard counts pass their own model-level key (e.g. source
  /// partition id and a per-partition counter).
  void send(unsigned from, unsigned to, Duration delay, std::uint32_t src,
            std::uint64_t srcSeq, std::function<void()> fn);
  void send(unsigned from, unsigned to, Duration delay,
            std::function<void()> fn);

  /// Drive every shard to completion (all queues and mailboxes empty) and
  /// return aggregate statistics. Rethrows the lowest-shard-index error if
  /// any shard's root task failed. Call at most once.
  Stats run();

 private:
  struct alignas(64) ShardState {
    std::unique_ptr<Scheduler> sched;
    /// Inboxes, indexed by source shard.
    std::vector<std::unique_ptr<Mailbox>> inbox;
    std::vector<std::function<void(Scheduler&)>> setup;
    /// Per-(this shard -> dst) send counters for the default merge key.
    std::vector<std::uint64_t> sendSeq;
    /// Published by the drain/reduce phase, read by the coordinator.
    SimTime nextTime = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t eventsRun = 0;
    std::exception_ptr error;
    /// Reused drain scratch (cleared each window).
    std::vector<RemoteEvent> batch;
  };

  /// Phase bodies, shared by the threaded and the cooperative drivers.
  void runSetup(unsigned i);
  void drainPhase(unsigned i);
  void execPhase(unsigned i, SimTime horizon);
  /// The reduce step between the phases; returns false when finished.
  bool computeWindow();

  void runCooperative();
  void runThreaded(unsigned threads);

  std::vector<ShardState> shards_;
  Duration lookahead_ = 0.0;
  unsigned threads_ = 0;
  SimTime horizon_ = 0.0;
  bool done_ = false;
  std::uint64_t windows_ = 0;
  bool ran_ = false;
  /// Per-run observer handle, resolved from the installed RuntimeObserver
  /// at run() start. Null (the common case) keeps every phase at one
  /// predicted branch; the protocol itself never reads a clock — all
  /// timing lives behind these callbacks, outside simcore.
  ShardRunObserver* prof_ = nullptr;
  /// nextTime snapshot scratch for the window() callback (sized once at
  /// run() start, only when an observer is installed).
  std::vector<SimTime> nextScratch_;
};

/// Per-run callback surface for real-time instrumentation of the window
/// protocol. Implementations (obs/runtimeprof.hpp) read the wall clock on
/// their side of these calls; simcore stays clock-free and deterministic.
/// All methods are invoked from worker threads concurrently — except
/// window(), which runs single-threaded inside the barrier completion —
/// and must be noexcept (the completion is a noexcept context).
class ShardRunObserver {
 public:
  virtual ~ShardRunObserver() = default;
  /// `idx` is the shard index for kSetup/kDrain/kExec, the worker index
  /// for kBarrier, and 0 for kReduce (single-threaded).
  virtual void phaseBegin(WindowPhase phase, unsigned idx) noexcept = 0;
  /// `items`: arrivals injected for kDrain, events run for kExec, else 0.
  virtual void phaseEnd(WindowPhase phase, unsigned idx,
                        std::uint64_t items) noexcept = 0;
  /// After every reduce, from one thread: the per-shard nextTime snapshot
  /// (infinity = shard idle) and the reduction result. `done` marks the
  /// final reduce, whose window never executes.
  virtual void window(std::uint64_t index, const SimTime* nextTimes,
                      unsigned shards, SimTime minNext, SimTime horizon,
                      bool done) noexcept = 0;
  /// End of run(), with the aggregate statistics (called before any error
  /// from the run is rethrown).
  virtual void finished(const ShardGroup::Stats& stats) noexcept = 0;
};

/// Process-wide hook for real-time execution profiling. Dormant when
/// unset: every instrumentation site is a single null check. Installed by
/// obs::RuntimeProfiler; simcore only defines the seam.
class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;
  /// A ShardGroup::run is starting; return a per-run observer (owned by
  /// the RuntimeObserver) or nullptr to skip this run.
  virtual ShardRunObserver* beginShardRun(const ShardRunInfo& info)
      noexcept = 0;
  /// parallelFor region lifecycle. `id` is a process-unique region id;
  /// jobBegin/jobEnd run on worker threads (worker < threads).
  virtual void parallelForBegin(std::uint64_t id, std::size_t jobs,
                                unsigned threads) noexcept = 0;
  virtual void jobBegin(std::uint64_t id, std::size_t job,
                        unsigned worker) noexcept = 0;
  virtual void jobEnd(std::uint64_t id, std::size_t job,
                      unsigned worker) noexcept = 0;
  virtual void parallelForEnd(std::uint64_t id) noexcept = 0;
};

/// Install (or clear, with nullptr) the process-wide runtime observer.
/// Not synchronized against in-flight runs: install before starting work,
/// clear after joining it. Returns the previous observer.
RuntimeObserver* setRuntimeObserver(RuntimeObserver* observer) noexcept;
RuntimeObserver* runtimeObserver() noexcept;

/// Deterministically-slotted parallel job map: run body(0..n-1) on up to
/// `threads` workers (dynamic work stealing via an atomic cursor; callers
/// make determinism a property of each job, e.g. one independent simulation
/// per job writing only its own slot). threads <= 1 runs inline, in order.
/// Exceptions: the lowest job index's exception is rethrown after all
/// workers finish.
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& body);

}  // namespace bgckpt::sim
