#include "simcore/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace bgckpt::sim {
namespace {

std::string formatScaled(double value, double base,
                         const std::array<const char*, 5>& suffixes) {
  std::size_t idx = 0;
  while (std::abs(value) >= base && idx + 1 < suffixes.size()) {
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  return buf;
}

}  // namespace

std::string formatBytes(Bytes bytes) {
  return formatScaled(static_cast<double>(bytes), 1024.0,
                      {"B", "KiB", "MiB", "GiB", "TiB"});
}

std::string formatBandwidth(Bandwidth rate) {
  return formatScaled(rate, 1000.0,
                      {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"});
}

std::string formatDuration(Duration seconds) {
  char buf[64];
  if (seconds >= 1.0 || seconds == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace bgckpt::sim
