// Units and quantity helpers shared across the simulation stack.
//
// Simulated time is a double in seconds; data sizes are unsigned byte
// counts; bandwidths are bytes per second. Helper constants and formatting
// keep machine descriptions readable (e.g. `425 * MB / sec` for a torus
// link) and bench output compact.
#pragma once

#include <cstdint>
#include <string>

namespace bgckpt::sim {

/// Simulated time, in seconds since the start of the run.
using SimTime = double;

/// A span of simulated time, in seconds.
using Duration = double;

/// Data size in bytes.
using Bytes = std::uint64_t;

/// Data rate in bytes per second.
using Bandwidth = double;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;
inline constexpr Bytes TiB = 1024 * GiB;

// Decimal units: vendor link/disk speeds are quoted in powers of ten.
inline constexpr Bytes KB = 1000;
inline constexpr Bytes MB = 1000 * KB;
inline constexpr Bytes GB = 1000 * MB;
inline constexpr Bytes TB = 1000 * GB;

inline constexpr Duration kMicrosecond = 1e-6;
inline constexpr Duration kMillisecond = 1e-3;

/// Time to move `size` bytes at `rate` bytes/second.
constexpr Duration transferTime(Bytes size, Bandwidth rate) {
  return static_cast<double>(size) / rate;
}

/// Render a byte count with a binary-unit suffix ("1.50 GiB").
std::string formatBytes(Bytes bytes);

/// Render a bandwidth with a decimal-unit suffix ("13.2 GB/s").
std::string formatBandwidth(Bandwidth rate);

/// Render a duration adaptively ("12.3 s", "4.56 ms", "7.8 us").
std::string formatDuration(Duration seconds);

}  // namespace bgckpt::sim
