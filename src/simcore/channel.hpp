// Message channels between simulated processes.
//
// `Channel<T>` is a FIFO queue with suspending receive and (optionally)
// bounded, suspending send. Wakeups are routed through the scheduler at the
// current simulated time, preserving global deterministic ordering.
//
// Waiter bookkeeping stores pointers into awaiter objects; an awaiter lives
// in its suspended coroutine's frame, so the pointers are stable until the
// coroutine is resumed.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "simcore/scheduler.hpp"

namespace bgckpt::sim {

template <typename T>
class Channel {
 public:
  /// An unbounded channel unless a capacity is given.
  explicit Channel(
      Scheduler& sched,
      std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : sched_(sched), capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Number of queued (sent, not yet received) items.
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Non-suspending send. Intended for unbounded channels; on a bounded
  /// channel it may transiently exceed capacity.
  void push(T value) {
    if (!recvWaiters_.empty()) {
      RecvWaiter* w = recvWaiters_.front();
      recvWaiters_.pop_front();
      w->value.emplace(std::move(value));
      sched_.scheduleResume(0.0, w->handle,
                            WakeEdge{WakeKind::kChannelPush, "channel"});
      return;
    }
    items_.push_back(std::move(value));
  }

  /// Awaitable send: suspends while the channel is at capacity.
  auto send(T value) { return SendAwaiter{*this, std::move(value), {}}; }

  /// Awaitable receive: suspends until an item is available.
  auto recv() { return RecvAwaiter{*this}; }

  /// Non-suspending receive; empty optional when nothing is queued.
  std::optional<T> tryRecv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    wakeOneSender();
    return v;
  }

 private:
  struct RecvWaiter {
    std::coroutine_handle<> handle;
    std::optional<T> value;
  };
  struct SendWaiter {
    std::coroutine_handle<> handle;
  };

  struct SendAwaiter {
    Channel& ch;
    T value;
    SendWaiter waiter;
    bool await_ready() const {
      return ch.items_.size() < ch.capacity_ || !ch.recvWaiters_.empty();
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter.handle = h;
      ch.sendWaiters_.push_back(&waiter);
    }
    void await_resume() { ch.push(std::move(value)); }
  };

  struct RecvAwaiter : RecvWaiter {
    Channel& ch;
    explicit RecvAwaiter(Channel& c) : ch(c) {}
    bool await_ready() {
      if (ch.items_.empty()) return false;
      this->value.emplace(std::move(ch.items_.front()));
      ch.items_.pop_front();
      ch.wakeOneSender();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      ch.recvWaiters_.push_back(this);
      // A suspended sender holds the item we are waiting for in its frame;
      // wake it so it can deposit the value (delivered directly to us).
      ch.wakeOneSender();
    }
    T await_resume() { return std::move(*this->value); }
  };

  void wakeOneSender() {
    if (!sendWaiters_.empty()) {
      SendWaiter* w = sendWaiters_.front();
      sendWaiters_.pop_front();
      sched_.scheduleResume(0.0, w->handle,
                            WakeEdge{WakeKind::kChannelPush, "channel"});
    }
  }

  Scheduler& sched_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<RecvWaiter*> recvWaiters_;
  std::deque<SendWaiter*> sendWaiters_;
};

}  // namespace bgckpt::sim
