// Lazy coroutine task type used for all simulated processes.
//
// A `Task<T>` is a coroutine that starts suspended and runs when awaited.
// Completion transfers control back to the awaiting coroutine via symmetric
// transfer, so long chains of awaits do not grow the native stack.
// Exceptions thrown inside a task propagate to the awaiter.
//
// Root tasks (simulated "processes" with no awaiting parent) are handed to
// `Scheduler::spawn`, which drives them and reports stray exceptions.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "simcore/arena.hpp"
#include "simcore/simcheck.hpp"

namespace bgckpt::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

// Inheriting FrameArenaAllocated routes the whole coroutine frame (the
// compiler sizes operator new for frame + promise) through the pooled
// arena, so per-await frame churn recycles instead of hitting malloc.
struct PromiseBase : FrameArenaAllocated {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.template emplace<T>(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    SIM_DCHECK(handle_, "awaiting a moved-from Task");
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    return std::move(std::get<T>(p.value));
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    SIM_DCHECK(handle_, "awaiting a moved-from Task");
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace bgckpt::sim
