// Tuning advisor: the paper's Section V guidance as a tool. Sweeps the
// rbIO writer-group ratio (and therefore nf = ng) on a simulated machine
// and recommends settings, explaining which resource binds at each point.
//
//   $ ./tuning_advisor [ranks]           (default 16384)
#include <cstdio>
#include <cstdlib>

#include "analysis/ascii.hpp"
#include "iolib/strategies.hpp"
#include "machine/bgp.hpp"

using namespace bgckpt;

int main(int argc, char** argv) {
  const int np = argc > 1 ? std::atoi(argv[1]) : 16384;
  std::printf("tuning rbIO for %d ranks on Intrepid GPFS...\n\n", np);
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);

  struct Row {
    int nf;
    double bandwidth;
    double writerSeconds;
    double perceived;
  };
  std::vector<Row> rows;
  std::vector<analysis::Bar> bars;
  for (int nf = 64; nf <= np / 4 && nf <= 8192; nf *= 2) {
    const int groupSize = np / nf;
    if (groupSize < 2) break;
    iolib::SimStack stack(np);
    const auto r = iolib::runCheckpoint(
        stack, spec, iolib::StrategyConfig::rbIo(groupSize, true));
    rows.push_back({nf, r.bandwidth, r.writerMakespan, r.perceivedBandwidth});
    bars.push_back({"nf=" + std::to_string(nf), r.bandwidth / 1e9});
    std::printf("  nf=%5d (np:ng=%4d:1): %6.2f GB/s, writers busy %5.2f s\n",
                nf, groupSize, r.bandwidth / 1e9, r.writerMakespan);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", analysis::barChart(bars, "GB/s").c_str());

  const auto best = *std::max_element(
      rows.begin(), rows.end(),
      [](const Row& a, const Row& b) { return a.bandwidth < b.bandwidth; });
  machine::Machine mach = machine::intrepidMachine(np);
  std::printf("recommendation: nf = ng = %d (np:ng = %d:1)\n", best.nf,
              np / best.nf);
  std::printf("  - expected write bandwidth : %.2f GB/s\n",
              best.bandwidth / 1e9);
  std::printf("  - worker-perceived speed   : %.0f TB/s\n",
              best.perceived / 1e12);
  std::printf("  - writers drain in         : %.1f s -> checkpoint every "
              ">= %.0f compute steps to keep writers off the critical "
              "path\n",
              best.writerSeconds, best.writerSeconds / 0.22 + 1);
  std::printf("\nwhy: below the optimum, too few streams underuse the %d "
              "file servers'\nper-stream service slots; above it, >%d "
              "concurrent streams thrash the %d\nstorage arrays and the "
              "directory metadata.\n",
              mach.io().numFileServers, mach.io().ddnStreamKnee,
              mach.io().numDdnArrays);
  return 0;
}
