// Quickstart: checkpoint and restart an application state with each of the
// paper's three strategies, on real files with 8 worker threads.
//
//   $ ./quickstart [directory]
//
// Demonstrates the core public API of the host backend:
//   hostio::writeCheckpoint / readCheckpoint / verifyCheckpoint.
#include <cstdio>
#include <filesystem>

#include "hostio/host_checkpoint.hpp"

using namespace bgckpt;

int main(int argc, char** argv) {
  const std::string base =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "bgckpt_quickstart")
                     .string();
  std::printf("bgckpt quickstart: 8 ranks, 6 fields of 512 KiB each\n");
  std::printf("checkpoint directory: %s\n\n", base.c_str());

  // 1. Invent some per-rank application state (six field blocks per rank,
  //    exactly how NekCEM hands E and H to the checkpoint layer).
  hostio::HostSpec spec;
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  spec.fieldBytesPerRank = 512 * 1024;
  spec.simTime = 12.5;
  spec.iteration = 4200;
  constexpr int kRanks = 8;
  std::vector<hostio::HostRankData> state(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    state[static_cast<std::size_t>(r)].fields.resize(6);
    for (int f = 0; f < 6; ++f) {
      auto& block = state[static_cast<std::size_t>(r)]
                        .fields[static_cast<std::size_t>(f)];
      block.resize(spec.fieldBytesPerRank);
      for (std::size_t i = 0; i < block.size(); ++i)
        block[i] = static_cast<std::byte>((r * 6 + f + i) & 0xFF);
    }
  }

  // 2. Write one checkpoint with each strategy.
  struct Variant {
    const char* name;
    hostio::HostConfig config;
  };
  const Variant variants[] = {
      {"1PFPP (one file per rank)", {hostio::HostStrategy::k1Pfpp, 0}},
      {"coIO  (2 shared files)", {hostio::HostStrategy::kCoIo, 2}},
      {"rbIO  (2 writers, reduced blocking)",
       {hostio::HostStrategy::kRbIo, 2}},
  };
  for (const auto& v : variants) {
    hostio::HostSpec s = spec;
    s.directory = base + "/" + std::to_string(static_cast<int>(
                                   v.config.strategy));
    const auto result = hostio::writeCheckpoint(s, v.config, state);
    std::printf("%-38s %6.1f ms, %7.1f MB/s", v.name,
                result.wallSeconds * 1e3, result.bandwidth / 1e6);
    if (v.config.strategy == hostio::HostStrategy::kRbIo)
      std::printf("  (perceived by workers: %.1f GB/s)",
                  result.perceivedBandwidth / 1e9);
    std::printf("\n");
    if (!hostio::verifyCheckpoint(s)) {
      std::printf("checksum verification FAILED\n");
      return 1;
    }
  }

  // 3. Restart from the rbIO checkpoint and confirm the state survived.
  hostio::HostSpec restart;
  restart.directory = base + "/" + std::to_string(static_cast<int>(
                                       hostio::HostStrategy::kRbIo));
  restart.step = spec.step;
  const auto back = hostio::readCheckpoint(restart, kRanks);
  for (int r = 0; r < kRanks; ++r)
    for (int f = 0; f < 6; ++f)
      if (back[static_cast<std::size_t>(r)]
              .fields[static_cast<std::size_t>(f)] !=
          state[static_cast<std::size_t>(r)]
              .fields[static_cast<std::size_t>(f)]) {
        std::printf("restart mismatch at rank %d field %d\n", r, f);
        return 1;
      }
  std::printf("\nrestart OK: state t=%.2f iteration=%llu restored "
              "bit-for-bit from the rbIO checkpoint\n",
              restart.simTime,
              static_cast<unsigned long long>(restart.iteration));
  std::filesystem::remove_all(base);
  return 0;
}
