// Drive the full Intrepid simulation: predict checkpoint performance for a
// user-chosen partition size and strategy mix, with per-phase breakdowns —
// the Fig. 5 experiment as an interactive tool.
//
//   $ ./intrepid_campaign [ranks]        (default 4096; try 16384, 65536)
#include <cstdio>
#include <cstdlib>

#include "analysis/ascii.hpp"
#include "iolib/strategies.hpp"
#include "machine/bgp.hpp"
#include "nekcem/perf_model.hpp"

using namespace bgckpt;

int main(int argc, char** argv) {
  const int np = argc > 1 ? std::atoi(argv[1]) : 4096;
  iolib::SimStack probe(np);
  std::printf("machine: %s\n", machine::describe(probe.mach).c_str());

  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);
  const double totalGb =
      static_cast<double>(np) * static_cast<double>(spec.bytesPerRank()) / 1e9;
  std::printf("checkpoint: %.1f GB per step (%.2f MB per rank, %d blocks)\n\n",
              totalGb, static_cast<double>(spec.bytesPerRank()) / 1e6,
              spec.numFields);

  struct Variant {
    const char* name;
    iolib::StrategyConfig cfg;
  };
  const std::vector<Variant> variants = {
      {"1PFPP", iolib::StrategyConfig::onePfpp()},
      {"coIO nf=1", iolib::StrategyConfig::coIo(1)},
      {"coIO 64:1", iolib::StrategyConfig::coIo(np / 64)},
      {"rbIO 64:1 nf=1", iolib::StrategyConfig::rbIo(64, false)},
      {"rbIO 64:1 nf=ng", iolib::StrategyConfig::rbIo(64, true)},
  };

  nekcem::PerfModel perf;
  const double tComp = perf.weakScalingStepSeconds();
  std::vector<analysis::Bar> bars;
  double bestBlocking = 1e300;
  std::string bestName;
  std::printf("%-18s %10s %12s %14s %12s\n", "approach", "time", "bandwidth",
              "perceived", "Tc/Tcomp");
  for (const auto& v : variants) {
    iolib::SimStack stack(np);
    const auto r = iolib::runCheckpoint(stack, spec, v.cfg);
    bars.push_back({v.name, r.bandwidth / 1e9});
    // Application-blocking time: for rbIO the workers return after the
    // nonblocking handoff; everyone else blocks for the full makespan.
    const double blocking =
        r.workerMakespan > 0 ? r.workerMakespan : r.makespan;
    if (blocking < bestBlocking) {
      bestBlocking = blocking;
      bestName = v.name;
    }
    std::printf("%-18s %9.2fs %9.2f GB/s", v.name, r.makespan,
                r.bandwidth / 1e9);
    if (r.perceivedBandwidth > 0)
      std::printf(" %9.0f TB/s", r.perceivedBandwidth / 1e12);
    else
      std::printf(" %14s", "-");
    std::printf(" %11.1f\n", r.makespan / tComp);
    std::fflush(stdout);
  }
  std::printf("\n%s", analysis::barChart(bars, "GB/s").c_str());
  const double ioShare =
      100.0 * bestBlocking / (bestBlocking + 20.0 * tComp);
  std::printf(
      "\nNekCEM compute step at this scale: %.3f s. Checkpointing every 20\n"
      "steps with %s blocks the application for %.4f s per checkpoint —\n"
      "%.2f%% of wall time.\n",
      tComp, bestName.c_str(), bestBlocking, ioShare);
  return 0;
}
