// I/O profile report: run one simulated checkpoint and print the
// Darshan-style job summary — the kind of log analysis the paper uses in
// Section V to verify its tuning ("examining I/O log data from both user
// profiling and system profiling").
//
//   $ ./darshan_report [ranks] [strategy]
//     strategy: 1pfpp | coio | rbio (default rbio)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "iolib/strategies.hpp"
#include "profiling/report.hpp"

using namespace bgckpt;

int main(int argc, char** argv) {
  const int np = argc > 1 ? std::atoi(argv[1]) : 4096;
  const std::string which = argc > 2 ? argv[2] : "rbio";

  iolib::StrategyConfig cfg;
  if (which == "1pfpp") {
    cfg = iolib::StrategyConfig::onePfpp();
  } else if (which == "coio") {
    cfg = iolib::StrategyConfig::coIo(np / 64);
  } else {
    cfg = iolib::StrategyConfig::rbIo(64, true);
  }

  iolib::SimStack stack(np);
  const auto spec = iolib::CheckpointSpec::nekcemWeakScaling(np);
  std::printf("running %s on %d simulated ranks...\n",
              cfg.describe().c_str(), np);
  const auto result = runCheckpoint(stack, spec, cfg);
  std::printf("checkpoint took %.2f s at %.2f GB/s\n\n", result.makespan,
              result.bandwidth / 1e9);

  prof::ReportOptions opt;
  opt.numRanks = np;
  opt.jobName = cfg.describe();
  opt.slowestRanksShown = 8;
  std::printf("%s", prof::renderReport(stack.profile, opt).c_str());

  // The write-activity strip, as in Fig. 12.
  const int bins = 64;
  auto line = stack.profile.activityTimeline(
      prof::Op::kWrite, result.makespan / bins, result.makespan);
  std::printf("\nwrite activity over time (64 slices):\n  |");
  int maxed = 1;
  for (int v : line) maxed = std::max(maxed, v);
  static const char kShades[] = " .:-=+*#%@";
  for (int v : line)
    std::putchar(kShades[v == 0 ? 0 : 1 + 8 * (v - 1) / std::max(1, maxed - 1)]);
  std::printf("|\n  (peak: %d processes writing concurrently)\n", maxed);
  return 0;
}
