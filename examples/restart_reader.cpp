// Restart reader: the "special reader interface" of Section III-B. Opens a
// checkpoint part file, dumps the master header, the offset table and
// per-section statistics, and verifies the checksums — useful for
// post-processing and debugging checkpoint sets.
//
//   $ ./restart_reader <file>
//   $ ./restart_reader            (writes and inspects a demo file)
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "iofmt/file_io.hpp"

using namespace bgckpt;

namespace {

std::string makeDemoFile() {
  const auto path = std::filesystem::temp_directory_path() /
                    "bgckpt_restart_reader_demo.ckpt";
  iofmt::FileSpec spec;
  spec.step = 12;
  spec.part = 3;
  spec.ranksInFile = 4;
  spec.firstGlobalRank = 12;
  spec.fieldBytesPerRank = 64 * 1024;
  spec.simTime = 3.75;
  spec.iteration = 1500;
  spec.application = "nekcem-mini";
  spec.fieldNames = {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz"};
  iofmt::CheckpointWriter writer(path.string(), spec);
  std::vector<std::byte> block(spec.fieldBytesPerRank);
  for (int f = 0; f < 6; ++f)
    for (int r = 0; r < 4; ++r) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        const double v = 0.1 * f + 0.01 * r;
        std::memcpy(block.data() + (i / 8) * 8, &v, sizeof(double));
        i += 7;
      }
      writer.writeBlock(f, r, block);
    }
  writer.close();
  return path.string();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : makeDemoFile();
  std::printf("inspecting %s\n\n", path.c_str());

  iofmt::CheckpointReader reader(path);
  const auto& spec = reader.spec();
  std::printf("== master header ==\n");
  std::printf("  application   : %s\n", spec.application.c_str());
  std::printf("  step / part   : %u / %u\n", spec.step, spec.part);
  std::printf("  ranks in file : %u (global ranks %u..%u)\n",
              spec.ranksInFile, spec.firstGlobalRank,
              spec.firstGlobalRank + spec.ranksInFile - 1);
  std::printf("  sim time      : %.6f (iteration %llu)\n", spec.simTime,
              static_cast<unsigned long long>(spec.iteration));
  std::printf("  fields        : %u x %llu bytes per rank\n",
              spec.numFields(),
              static_cast<unsigned long long>(spec.fieldBytesPerRank));
  std::printf("  file size     : %llu bytes\n",
              static_cast<unsigned long long>(spec.fileBytes()));

  std::printf("\n== offset table ==\n");
  for (std::uint32_t f = 0; f < spec.numFields(); ++f) {
    const auto info = reader.sectionInfo(static_cast<int>(f));
    std::printf("  %-8s @ %10llu  %10llu bytes  crc 0x%08X\n",
                info.name.c_str(),
                static_cast<unsigned long long>(
                    spec.sectionOffset(static_cast<int>(f))),
                static_cast<unsigned long long>(info.dataBytes), info.crc);
  }

  std::printf("\n== per-field statistics (as doubles) ==\n");
  for (std::uint32_t f = 0; f < spec.numFields(); ++f) {
    double mn = 1e300, mx = -1e300, sum = 0;
    std::uint64_t count = 0;
    for (std::uint32_t r = 0; r < spec.ranksInFile; ++r) {
      const auto block =
          reader.readBlock(static_cast<int>(f), static_cast<int>(r));
      for (std::size_t i = 0; i + 8 <= block.size(); i += 8) {
        double v;
        std::memcpy(&v, block.data() + i, sizeof(v));
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
        ++count;
      }
    }
    std::printf("  %-8s min %12.5g  max %12.5g  mean %12.5g\n",
                spec.fieldNames[f].c_str(), mn, mx,
                sum / static_cast<double>(count));
  }

  std::printf("\nchecksum verification: %s\n",
              reader.verify() ? "OK" : "FAILED");
  return reader.verify() ? 0 : 1;
}
