// Waveguide with checkpoint/restart: the paper's production scenario in
// miniature. A plane wave propagates through a periodic guide under the
// mini SEDG Maxwell solver; every k steps the state is checkpointed with
// rbIO; the run is then "killed" and restarted from the latest checkpoint,
// and the resumed trajectory is verified bit-for-bit against an unbroken
// reference run.
//
//   $ ./waveguide_checkpoint [steps] [checkpoint-every]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "hostio/solver_io.hpp"

using namespace bgckpt;
using nekcem::Boundary;
using nekcem::BoxMesh;
using nekcem::MaxwellSolver;

int main(int argc, char** argv) {
  const int totalSteps = argc > 1 ? std::atoi(argv[1]) : 40;
  const int ckptEvery = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bgckpt_waveguide").string();
  std::filesystem::remove_all(dir);

  constexpr int kRanks = 8;  // logical MPI ranks (element partitions)
  BoxMesh guide(4, 2, 2, 2.0, 1.0, 1.0, Boundary::kPeriodic);
  const int order = 5;

  std::printf("waveguide: %d elements, order %d (%zu grid points), "
              "%d logical ranks\n",
              guide.numElements(), order,
              MaxwellSolver(guide, order).gridPoints(), kRanks);

  // Reference run: no interruption.
  MaxwellSolver reference(guide, order);
  reference.setSolution(nekcem::planeWaveX(2.0), 0.0);
  const double dt = reference.stableDt();

  // Production run: checkpoint every ckptEvery steps with rbIO.
  MaxwellSolver production(guide, order);
  production.setSolution(nekcem::planeWaveX(2.0), 0.0);
  int lastCkptStep = -1;
  for (int s = 1; s <= totalSteps; ++s) {
    reference.step(dt);
    production.step(dt);
    if (s % ckptEvery == 0) {
      auto spec = hostio::solverSpec(production, kRanks, dir, s);
      const auto result = hostio::writeCheckpoint(
          spec, {hostio::HostStrategy::kRbIo, 2},
          hostio::snapshotSolver(production, kRanks));
      lastCkptStep = s;
      std::printf("  step %3d: checkpoint (%d files, %.1f ms, worker-"
                  "perceived %.2f GB/s)\n",
                  s, 2, result.wallSeconds * 1e3,
                  result.perceivedBandwidth / 1e9);
    }
  }
  if (lastCkptStep < 0) {
    std::printf("no checkpoint was taken; increase steps\n");
    return 1;
  }

  // Simulated crash: the production solver is gone. Restart from disk.
  std::printf("\n-- crash! restarting from step %d --\n", lastCkptStep);
  hostio::HostSpec restartSpec;
  restartSpec.directory = dir;
  restartSpec.step = lastCkptStep;
  const auto data = hostio::readCheckpoint(restartSpec, kRanks);
  MaxwellSolver resumed(guide, order);
  hostio::restoreSolver(resumed, data, restartSpec);
  std::printf("restored t=%.4f after %llu steps\n", resumed.time(),
              static_cast<unsigned long long>(resumed.stepsTaken()));

  // Finish the run and compare against the unbroken reference.
  for (int s = lastCkptStep + 1; s <= totalSteps; ++s) resumed.step(dt);
  double maxDelta = 0;
  for (int f = 0; f < nekcem::kNumFieldComponents; ++f) {
    const auto& a = reference.fields().comp[static_cast<std::size_t>(f)];
    const auto& b = resumed.fields().comp[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < a.size(); ++i)
      maxDelta = std::max(maxDelta, std::abs(a[i] - b[i]));
  }
  std::printf("max |reference - resumed| after %d steps: %.3e %s\n",
              totalSteps, maxDelta,
              maxDelta == 0.0 ? "(bit-for-bit)" : "");
  std::printf("final solution error vs analytic wave: %.3e\n",
              resumed.maxError(nekcem::planeWaveX(2.0)));
  std::filesystem::remove_all(dir);
  return maxDelta == 0.0 ? 0 : 1;
}
